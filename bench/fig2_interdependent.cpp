// Figure 2 (Experiment 1): total gain and loss across actors vs. the number
// of actors. Expected shape: both |gain| and |loss| grow with the actor
// count and saturate near the number of competition points (~12 hubs);
// gain + loss (the system impact) stays constant.
#include "bench_common.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig2_interdependent", args, argc, argv);
  ThreadPool pool(args.threads);
  auto m = sim::build_western_us();

  sim::ExperimentOptions opt;
  opt.trials = args.trials;
  opt.seed = args.seed;
  opt.pool = &pool;

  const std::vector<int> actor_counts{1, 2, 3, 4, 6, 8, 12, 16, 24};
  auto points = harness.run_case("experiment_gain_loss", [&] {
    return sim::experiment_gain_loss(m.network, actor_counts, opt);
  });

  Table t({"actors", "total_gain", "total_|loss|", "gain+loss(net)",
           "se_gain", "se_loss"});
  for (const auto& p : points) {
    t.add_numeric_row({static_cast<double>(p.actors), p.mean_gain,
                       -p.mean_loss, p.mean_net, p.se_gain, p.se_loss},
                      1);
  }
  bench::emit(t, args,
              "Figure 2: gain/loss vs actor count (western US model)");
  harness.emit_report();
  return 0;
}
