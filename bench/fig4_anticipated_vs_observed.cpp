// Figure 4 (Experiment 2): anticipated vs. observed SA profit for a 6-actor
// system. Expected shape: the anticipated return stays flat (or grows) as
// noise increases — the overconfident attacker — while the observed return
// decays.
#include "bench_common.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig4_anticipated_vs_observed", args, argc, argv);
  ThreadPool pool(args.threads);
  auto m = sim::build_western_us();

  sim::ExperimentOptions opt;
  opt.trials = args.trials;
  opt.seed = args.seed;
  opt.pool = &pool;

  sim::AdversaryNoiseConfig cfg;
  cfg.actor_counts = {6};  // the paper's Fig 4 slice
  auto points = harness.run_case("experiment_adversary_noise", [&] {
    return sim::experiment_adversary_noise(m.network, cfg, opt);
  });

  Table t({"sigma", "anticipated", "observed", "anticipated-observed",
           "se_anticipated", "se_observed"});
  for (const auto& p : points) {
    t.add_numeric_row({p.sigma, p.anticipated, p.observed,
                       p.anticipated - p.observed, p.se_anticipated,
                       p.se_observed},
                      2);
  }
  bench::emit(t, args,
              "Figure 4: anticipated vs observed SA profit (6 actors)");
  harness.emit_report();
  return 0;
}
