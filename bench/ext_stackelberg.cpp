// Extension experiment: static (paper) defense vs Stackelberg defense
// against a re-optimizing adversary.
//
// The paper's defenders estimate attack probabilities once and invest; a
// real adversary re-plans around the defense. This bench sweeps the
// defense budget and reports the SA's *post-defense best response* value
// under (a) the paper's collaborative defender (Pa from SA simulation on
// the honest model) and (b) the greedy Stackelberg leader that anticipates
// the re-optimization. Lower remaining value = better defense.
#include "bench_common.hpp"
#include "gridsec/core/defender.hpp"
#include "gridsec/core/stackelberg.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_stackelberg", args, argc, argv);
  auto m = sim::build_western_us();
  Rng rng(args.seed);
  const int n_actors = 6;
  auto own = cps::Ownership::random(m.network.num_edges(), n_actors, rng);
  auto im = harness.run_case("impact_matrix", [&] {
    return cps::compute_impact_matrix(m.network, own);
  });
  if (!im.is_ok()) {
    std::fprintf(stderr, "impact failed\n");
    return 1;
  }

  core::AdversaryConfig adv;
  adv.max_targets = 3;

  // Static defender inputs: Pa from the deterministic SA prediction.
  Rng pa_rng(args.seed + 1);
  auto pa = core::estimate_attack_probabilities(m.network, own, adv, {0.0},
                                                1, pa_rng);
  if (!pa.is_ok()) {
    std::fprintf(stderr, "pa failed\n");
    return 1;
  }

  Table t({"budget_assets", "undefended", "static_remaining",
           "stackelberg_remaining", "stackelberg_advantage"});
  for (int budget = 0; budget <= 6; ++budget) {
    // (a) The paper's collaborative defender with this shared budget.
    core::DefenderConfig dc;
    dc.defense_cost.assign(static_cast<std::size_t>(m.network.num_edges()),
                           1.0);
    dc.budget.assign(static_cast<std::size_t>(n_actors),
                     static_cast<double>(budget) / n_actors);
    auto static_plan = core::defend_collaborative(im->matrix, own, *pa, dc);
    auto static_resp = core::follower_best_response(
        im->matrix, static_plan.defended, adv, 1.0);

    // (b) The Stackelberg leader with the same system budget.
    core::StackelbergConfig sc;
    sc.adversary = adv;
    sc.defense_cost = 1.0;
    sc.budget = budget;
    auto leader = harness.run_case(
        "stackelberg_defense/budget_" + std::to_string(budget),
        [&] { return core::stackelberg_defense(im->matrix, sc); });

    t.add_numeric_row(
        {static_cast<double>(budget), leader.undefended_return,
         static_resp.anticipated_return, leader.follower_return,
         static_resp.anticipated_return - leader.follower_return},
        1);
  }
  bench::emit(t, args,
              "Extension: static vs Stackelberg defense (re-optimizing SA)");
  harness.emit_report();
  return 0;
}
