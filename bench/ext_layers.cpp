// Extension experiment (§II-E4/§II-F4): defense-in-depth investment.
//
// Actors invest their budgets in security *layers* on their own assets
// (each layer halves the attack success probability and raises the attack
// cost). The strategic adversary then plans against the hardened posture.
// Reported per budget level: total layers bought, the SA's expected return,
// and the number of targets still worth attacking — the diminishing-returns
// curve of layered hardening.
#include "bench_common.hpp"
#include "gridsec/core/defender.hpp"
#include "gridsec/cps/security.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_layers", args, argc, argv);
  auto m = sim::build_western_us();
  Rng rng(args.seed);
  const int n_actors = 6;
  auto own = cps::Ownership::random(m.network.num_edges(), n_actors, rng);
  auto im = harness.run_case("impact_matrix", [&] {
    return cps::compute_impact_matrix(m.network, own);
  });
  if (!im.is_ok()) {
    std::fprintf(stderr, "impact failed\n");
    return 1;
  }

  // Attack probabilities from the SA's own preferences (deterministic view).
  core::AdversaryConfig probe;
  probe.max_targets = 6;
  Rng pa_rng(args.seed + 1);
  auto pa = core::estimate_attack_probabilities(m.network, own, probe, {0.0},
                                                1, pa_rng);
  if (!pa.is_ok()) {
    std::fprintf(stderr, "pa failed\n");
    return 1;
  }

  cps::SecurityModel model;
  model.base_success_prob = 0.9;
  model.success_decay_per_layer = 0.5;
  model.base_attack_cost = 100.0;
  model.attack_cost_per_layer = 500.0;

  Table t({"budget_per_actor", "layers_bought", "sa_expected_return",
           "sa_targets"});
  for (double budget : {0.0, 1000.0, 3000.0, 6000.0, 12000.0}) {
    cps::SecurityPosture posture(m.network.num_edges(), model);
    cps::LayeredDefenseConfig cfg;
    cfg.layer_cost = 1000.0;
    cfg.max_layers_per_target = 3;
    cfg.budget.assign(static_cast<std::size_t>(n_actors), budget);
    auto plan = harness.run_case(
        "defend_layered/" + format_double(budget, 0),
        [&] { return cps::defend_layered(im->matrix, own, *pa, posture, cfg); });
    if (!plan.optimal()) {
      std::fprintf(stderr, "layered defense failed\n");
      return 1;
    }
    for (int e = 0; e < m.network.num_edges(); ++e) {
      posture.set_layers(e, plan.added_layers[static_cast<std::size_t>(e)]);
    }
    core::AdversaryConfig hardened;
    hardened.max_targets = 6;
    hardened.success_prob = posture.success_prob_vector();
    hardened.attack_cost = posture.attack_cost_vector();
    core::StrategicAdversary sa(hardened);
    auto attack = sa.plan(im->matrix);
    t.add_numeric_row({budget, static_cast<double>(plan.total_layers()),
                       attack.anticipated_return,
                       static_cast<double>(attack.targets.size())},
                      1);
  }
  bench::emit(t, args,
              "Extension: layered hardening vs SA expected return");
  harness.emit_report();
  return 0;
}
