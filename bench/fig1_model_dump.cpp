// Figure 1: the six-state interconnected gas-electric flow model.
// Prints the infrastructure (hubs, edges with capacity/cost/loss) and the
// solved social-welfare dispatch, mirroring the paper's model figure.
#include <iostream>

#include "bench_common.hpp"
#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig1_model_dump", args, argc, argv);
  auto m = sim::build_western_us();

  Table edges({"edge", "kind", "capacity", "cost", "loss%", "flow",
               "utilization%"});
  auto sol = harness.run_case(
      "solve_social_welfare",
      [&] { return flow::solve_social_welfare(m.network); });
  if (!sol.optimal()) {
    std::cerr << "model failed to solve\n";
    return 1;
  }
  const auto kind_name = [](flow::EdgeKind k) {
    switch (k) {
      case flow::EdgeKind::kSupply:
        return "supply";
      case flow::EdgeKind::kDemand:
        return "demand";
      case flow::EdgeKind::kTransmission:
        return "transmission";
      case flow::EdgeKind::kConversion:
        return "conversion";
    }
    return "?";
  };
  for (int e = 0; e < m.network.num_edges(); ++e) {
    const auto& edge = m.network.edge(e);
    const double f = sol.flow[static_cast<std::size_t>(e)];
    edges.add_row({edge.name, kind_name(edge.kind),
                   format_double(edge.capacity, 1),
                   format_double(edge.cost, 2),
                   format_double(100.0 * edge.loss, 2), format_double(f, 1),
                   format_double(
                       edge.capacity > 0 ? 100.0 * f / edge.capacity : 0.0,
                       1)});
  }
  bench::emit(edges, args, "Figure 1: six-state gas-electric model");

  Table prices({"hub", "LMP"});
  for (int n = 0; n < m.network.num_nodes(); ++n) {
    if (m.network.node(n).kind != flow::NodeKind::kHub) continue;
    prices.add_row({m.network.node(n).name,
                    format_double(
                        sol.node_price[static_cast<std::size_t>(n)], 2)});
  }
  bench::emit(prices, args, "Locational marginal prices");
  if (!args.csv_only) {
    std::cout << "\nsocial welfare: " << format_double(sol.welfare, 1)
              << "  (" << m.long_haul.size() << " long-haul edges, "
              << m.network.num_edges() << " assets)\n";
  }
  harness.emit_report();
  return 0;
}
