// Extension experiment: what the transport abstraction gives away.
//
// The paper's flow model routes energy freely up to line capacities,
// arguing (via D-FACTS) that angle physics can be neglected. This bench
// builds the western-US *electric* side as a DC network (susceptances
// synthesized proportional to capacity over centroid distance), then
// compares the transport relaxation against the DC-OPF: welfare, congested
// lines, and the per-line outage-impact ranking correlation. High
// correlation supports the paper's abstraction for impact analysis even
// where absolute dispatch differs.
#include <cmath>

#include "bench_common.hpp"
#include "gridsec/flow/dcopf.hpp"
#include "gridsec/sim/western_us.hpp"
#include "gridsec/util/stats.hpp"

namespace {

using namespace gridsec;

flow::DcNetwork western_electric_dc() {
  auto m = sim::build_western_us();
  const flow::Network& net = m.network;
  flow::DcNetwork dc;
  std::vector<int> bus_of(static_cast<std::size_t>(net.num_nodes()), -1);
  for (flow::NodeId h : m.elec_hub) {
    bus_of[static_cast<std::size_t>(h)] =
        dc.add_bus(net.node(h).name);
  }
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto& edge = net.edge(e);
    const int from = edge.from >= 0
                         ? bus_of[static_cast<std::size_t>(edge.from)]
                         : -1;
    const int to =
        edge.to >= 0 ? bus_of[static_cast<std::size_t>(edge.to)] : -1;
    switch (edge.kind) {
      case flow::EdgeKind::kSupply:
        if (to >= 0) dc.add_generator(edge.name, to, edge.capacity, edge.cost);
        break;
      case flow::EdgeKind::kConversion:
        // Treat gas-fired fleets as generators at the electric bus, priced
        // at the grossed-up marginal gas price plus the adder.
        if (to >= 0) {
          dc.add_generator(edge.name, to, edge.capacity,
                           edge.cost + 20.0 / (1.0 - edge.loss));
        }
        break;
      case flow::EdgeKind::kDemand:
        if (from >= 0) dc.add_load(edge.name, from, edge.capacity, -edge.cost);
        break;
      case flow::EdgeKind::kTransmission:
        if (from >= 0 && to >= 0) {
          // Susceptance ~ capacity / (1 + loss): longer (lossier) lines are
          // electrically weaker.
          dc.add_line(edge.name, from, to,
                      edge.capacity / (1.0 + 50.0 * edge.loss),
                      edge.capacity);
        }
        break;
    }
  }
  return dc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_dcopf", args, argc, argv);
  auto dc = western_electric_dc();

  auto physics =
      harness.run_case("solve_dc_opf", [&] { return flow::solve_dc_opf(dc); });
  auto transport = harness.run_case("solve_transport_relaxation", [&] {
    return flow::solve_transport_relaxation(dc);
  });
  if (!physics.optimal() || !transport.optimal()) {
    std::fprintf(stderr, "solve failed\n");
    return 1;
  }

  int congested_dc = 0, congested_tr = 0;
  for (std::size_t l = 0; l < dc.lines().size(); ++l) {
    const double cap = dc.lines()[l].capacity;
    if (std::fabs(physics.line_flow[l]) > 0.999 * cap) ++congested_dc;
    if (std::fabs(transport.line_flow[l]) > 0.999 * cap) ++congested_tr;
  }
  Table t({"model", "welfare", "congested_lines", "welfare_gap_vs_transport"});
  t.add_row({"transport (paper)", format_double(transport.welfare, 0),
             std::to_string(congested_tr), "0"});
  t.add_row({"dc_opf", format_double(physics.welfare, 0),
             std::to_string(congested_dc),
             format_double(transport.welfare - physics.welfare, 0)});
  bench::emit(t, args, "Extension: transport abstraction vs DC-OPF physics");

  // Per-line outage impact ranking under each model.
  std::vector<double> impact_tr, impact_dc;
  harness.run_case("line_outage_ranking_sweep", [&] {
    impact_tr.clear();  // rerun-safe under --reps>1
    impact_dc.clear();
    for (std::size_t l = 0; l < dc.lines().size(); ++l) {
      flow::DcNetwork hit = dc;
      hit.mutable_lines().erase(hit.mutable_lines().begin() +
                                static_cast<std::ptrdiff_t>(l));
      auto tr = flow::solve_transport_relaxation(hit);
      auto ph = flow::solve_dc_opf(hit);
      impact_tr.push_back(tr.optimal() ? transport.welfare - tr.welfare
                                       : 0.0);
      impact_dc.push_back(ph.optimal() ? physics.welfare - ph.welfare : 0.0);
    }
  });
  Table c({"comparison", "spearman", "pearson"});
  c.add_row({"line_outage_impact: transport vs dc_opf",
             format_double(spearman_correlation(impact_tr, impact_dc), 3),
             format_double(correlation(impact_tr, impact_dc), 3)});
  bench::emit(c, args, "Outage-impact ranking agreement");
  harness.emit_report();
  return 0;
}
