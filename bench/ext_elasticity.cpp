// Extension experiment: demand elasticity vs the attack economy.
//
// The paper fixes consumer prices; real demand curtails its lowest-value
// usage first. This bench rebuilds the western-US system with each
// electric consumer's flat price replaced by an N-tier linear demand curve
// of the same peak willingness-to-pay and quantity, then measures how the
// attack economy shrinks: total gains/losses (Experiment 1's quantities)
// and the best single-asset attack value, as elasticity granularity grows.
// 1 tier == the paper's fixed-price model.
#include "bench_common.hpp"
#include "gridsec/core/adversary.hpp"
#include "gridsec/flow/elastic.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

namespace {

using namespace gridsec;

// Rebuilds the western model with electric demand split into `tiers`
// price tiers (tiers == 1 keeps the original flat-price edges).
flow::Network with_elastic_loads(int tiers) {
  auto m = sim::build_western_us();
  if (tiers <= 1) return m.network;
  flow::Network out;
  // Copy hubs first (ids must match for edge re-creation).
  std::vector<flow::NodeId> node_map(
      static_cast<std::size_t>(m.network.num_nodes()), -1);
  for (int n = 0; n < m.network.num_nodes(); ++n) {
    if (m.network.node(n).kind == flow::NodeKind::kHub) {
      node_map[static_cast<std::size_t>(n)] =
          out.add_hub(m.network.node(n).name);
    }
  }
  for (int e = 0; e < m.network.num_edges(); ++e) {
    const auto& edge = m.network.edge(e);
    switch (edge.kind) {
      case flow::EdgeKind::kSupply:
        out.add_supply(edge.name,
                       node_map[static_cast<std::size_t>(edge.to)],
                       edge.capacity, edge.cost, edge.loss);
        break;
      case flow::EdgeKind::kDemand: {
        const flow::NodeId hub =
            node_map[static_cast<std::size_t>(edge.from)];
        if (edge.name.find(".elec.load") != std::string::npos) {
          // Peak willingness 1.6x the flat price, same total quantity.
          auto curve = flow::linear_demand_curve(-edge.cost * 1.6,
                                                 edge.capacity, tiers);
          flow::add_elastic_demand(out, edge.name, hub, curve);
        } else {
          out.add_demand(edge.name, hub, edge.capacity, -edge.cost,
                         edge.loss);
        }
        break;
      }
      case flow::EdgeKind::kTransmission:
      case flow::EdgeKind::kConversion:
        out.add_edge(edge.name, edge.kind,
                     node_map[static_cast<std::size_t>(edge.from)],
                     node_map[static_cast<std::size_t>(edge.to)],
                     edge.capacity, edge.cost, edge.loss);
        break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_elasticity", args, argc, argv);
  ThreadPool pool(args.threads);

  Table t({"demand_tiers", "assets", "total_gain", "total_|loss|",
           "best_single_attack"});
  for (int tiers : {1, 2, 4, 8}) {
    flow::Network net = with_elastic_loads(tiers);
    sim::ExperimentOptions opt;
    opt.trials = args.trials;
    opt.seed = args.seed;
    opt.pool = &pool;
    auto gl = harness.run_case(
        "experiment_gain_loss/tiers_" + std::to_string(tiers),
        [&] { return sim::experiment_gain_loss(net, {6}, opt); });

    Rng rng(args.seed);
    auto own = cps::Ownership::random(net.num_edges(), 6, rng);
    auto im = cps::compute_impact_matrix(net, own);
    double best = 0.0;
    if (im.is_ok()) {
      core::AdversaryConfig cfg;
      cfg.max_targets = 1;
      best = core::StrategicAdversary(cfg).plan(im->matrix)
                 .anticipated_return;
    }
    t.add_numeric_row({static_cast<double>(tiers),
                       static_cast<double>(net.num_edges()),
                       gl[0].mean_gain, -gl[0].mean_loss, best},
                      1);
  }
  bench::emit(t, args, "Extension: demand elasticity vs attack economy");
  harness.emit_report();
  return 0;
}
