// Extension experiment (beyond the paper's figures): deception as defense.
//
// Operationalizes the paper's Figure-4 remark that feeding the attacker an
// over-confident model is "a viable defense policy": the defenders publish
// up to K falsified capacities (greedy construction), the SA plans on the
// published model and is realized against the truth. Reported per K: the
// SA's anticipated vs realized return and the defenders' realized losses.
#include "bench_common.hpp"
#include "gridsec/core/deception.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_deception", args, argc, argv);
  auto m = sim::build_western_us();

  Table t({"misreports", "sa_anticipated", "sa_realized", "defender_losses",
           "lied_edges"});
  Rng rng(args.seed);
  auto own = cps::Ownership::random(m.network.num_edges(), 6, rng);

  for (int k : {0, 1, 2, 3}) {
    core::DeceptionPlanOptions opt;
    opt.adversary.max_targets = 3;
    opt.max_misreports = k;
    auto plan =
        harness.run_case("greedy_deception_plan/" + std::to_string(k), [&] {
          return core::greedy_deception_plan(m.network, own, opt);
        });
    if (!plan.is_ok()) {
      std::fprintf(stderr, "deception failed: %s\n",
                   plan.status().to_string().c_str());
      return 1;
    }
    std::string lied;
    for (const auto& mr : plan->misreports) {
      if (!lied.empty()) lied += " ";
      lied += m.network.edge(mr.edge).name + "x" +
              format_double(mr.capacity_factor, 2);
    }
    t.add_row({std::to_string(k),
               format_double(plan->deceived.anticipated, 0),
               format_double(plan->deceived.realized, 0),
               format_double(plan->deceived.defender_losses, 0),
               lied.empty() ? "-" : lied});
  }
  bench::emit(t, args, "Extension: deception defense (6 actors, 3-target SA)");
  harness.emit_report();
  return 0;
}
