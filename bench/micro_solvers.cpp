// Solver micro-benchmarks: simplex on social-welfare LPs of growing size,
// MILP knapsacks, and the strategic-adversary MILP.
#include <benchmark/benchmark.h>

#include "gridsec/core/adversary.hpp"
#include "gridsec/cps/impact.hpp"
#include "gridsec/lp/milp.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/sim/scenario.hpp"
#include "gridsec/sim/western_us.hpp"

namespace {

using namespace gridsec;

void BM_SimplexWesternUs(benchmark::State& state) {
  auto m = sim::build_western_us();
  for (auto _ : state) {
    auto sol = flow::solve_social_welfare(m.network);
    benchmark::DoNotOptimize(sol.welfare);
  }
}
BENCHMARK(BM_SimplexWesternUs);

void BM_SimplexRandomGrid(benchmark::State& state) {
  Rng rng(42);
  sim::RandomGridOptions opt;
  opt.hubs = static_cast<int>(state.range(0));
  auto net = sim::make_random_grid(opt, rng);
  for (auto _ : state) {
    auto sol = flow::solve_social_welfare(net);
    benchmark::DoNotOptimize(sol.welfare);
  }
  state.SetLabel(std::to_string(net.num_edges()) + " edges");
}
BENCHMARK(BM_SimplexRandomGrid)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  lp::Problem p(lp::Objective::kMaximize);
  lp::LinearExpr weights;
  for (int i = 0; i < n; ++i) {
    weights.add(p.add_binary("b", rng.uniform(1.0, 10.0)),
                rng.uniform(0.5, 5.0));
  }
  p.add_constraint("w", std::move(weights), lp::Sense::kLessEqual,
                   0.3 * 2.75 * n);
  for (auto _ : state) {
    auto sol = lp::solve_milp(p);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(10)->Arg(20)->Arg(40);

void BM_AdversaryMilpWesternUs(benchmark::State& state) {
  auto m = sim::build_western_us();
  Rng rng(1);
  auto own = cps::Ownership::random(m.network.num_edges(),
                                    static_cast<int>(state.range(0)), rng);
  auto im = cps::compute_impact_matrix(m.network, own);
  core::AdversaryConfig cfg;
  cfg.max_targets = 6;
  core::StrategicAdversary sa(cfg);
  for (auto _ : state) {
    auto plan = sa.plan(im->matrix);
    benchmark::DoNotOptimize(plan.anticipated_return);
  }
}
BENCHMARK(BM_AdversaryMilpWesternUs)->Arg(2)->Arg(6)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
