// Solver micro-benchmarks: simplex on social-welfare LPs of growing size,
// MILP knapsacks, and the strategic-adversary MILP. Runs on the harness-v2
// report layer: --trials controls the measured repetitions per case and
// --json emits the schema-versioned BENCH report gated in CI.
#include "bench_common.hpp"
#include "gridsec/core/adversary.hpp"
#include "gridsec/cps/impact.hpp"
#include "gridsec/lp/milp.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/sim/scenario.hpp"
#include "gridsec/sim/western_us.hpp"

namespace {

using namespace gridsec;

lp::Problem make_knapsack(int n, std::uint64_t seed) {
  Rng rng(seed);
  lp::Problem p(lp::Objective::kMaximize);
  lp::LinearExpr weights;
  for (int i = 0; i < n; ++i) {
    weights.add(p.add_binary("b", rng.uniform(1.0, 10.0)),
                rng.uniform(0.5, 5.0));
  }
  p.add_constraint("w", std::move(weights), lp::Sense::kLessEqual,
                   0.3 * 2.75 * n);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("micro_solvers", args, argc, argv);
  // Per-case measured repetitions come from --trials; one warmup rep keeps
  // cold-cache noise out of the stats.
  const int reps = args.trials;

  Table t({"case", "median_ms", "mean_ms", "stddev_ms"});
  const auto record = [&](const std::string& name) {
    const auto& wall = harness.report().cases.back().wall;
    t.add_row({name, format_double(wall.median_seconds * 1e3, 3),
               format_double(wall.mean_seconds * 1e3, 3),
               format_double(wall.stddev_seconds * 1e3, 3)});
  };

  {
    auto m = sim::build_western_us();
    harness.run_case(
        "simplex_western_us",
        [&] { return flow::solve_social_welfare(m.network).welfare; }, reps,
        1);
    record("simplex_western_us");
  }

  for (const int hubs : {4, 8, 16, 32}) {
    Rng rng(42);
    sim::RandomGridOptions opt;
    opt.hubs = hubs;
    auto net = sim::make_random_grid(opt, rng);
    const std::string name =
        "simplex_random_grid/" + std::to_string(hubs);
    harness.run_case(
        name, [&] { return flow::solve_social_welfare(net).welfare; }, reps,
        1);
    record(name + " (" + std::to_string(net.num_edges()) + " edges)");
  }

  for (const int n : {10, 20, 40}) {
    const auto p = make_knapsack(n, 7);
    const std::string name = "milp_knapsack/" + std::to_string(n);
    harness.run_case(
        name, [&] { return lp::solve_milp(p).objective; }, reps, 1);
    record(name);
  }

  {
    auto m = sim::build_western_us();
    for (const int actors : {2, 6, 12}) {
      Rng rng(1);
      auto own = cps::Ownership::random(m.network.num_edges(), actors, rng);
      auto im = cps::compute_impact_matrix(m.network, own);
      core::AdversaryConfig cfg;
      cfg.max_targets = 6;
      core::StrategicAdversary sa(cfg);
      const std::string name =
          "adversary_milp_western_us/" + std::to_string(actors);
      harness.run_case(
          name, [&] { return sa.plan(im->matrix).anticipated_return; }, reps,
          1);
      record(name);
    }
  }

  bench::emit(t, args, "Solver micro-benchmarks (harness v2)");
  harness.emit_report();
  return 0;
}
