// Ablation: how much does scarcity drive the attack economy?
//
// The paper's "challenging model" (capacity −25%, demand +65%) exists to
// make attacks matter. This bench sweeps the demand surge and reports the
// Experiment-1 quantities (total gain/loss across actors at 6 actors) plus
// the best single-attack value — showing the attack economy switching on
// as spare capacity disappears.
#include "bench_common.hpp"
#include "gridsec/core/adversary.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_scarcity", args, argc, argv);
  ThreadPool pool(args.threads);

  Table t({"demand_surge", "welfare", "total_gain", "total_|loss|",
           "best_single_attack"});
  for (double surge : {0.0, 0.2, 0.4, 0.65, 0.9}) {
    sim::WesternUsOptions opt;
    opt.demand_surge = surge;
    auto m = sim::build_western_us(opt);

    sim::ExperimentOptions eopt;
    eopt.trials = args.trials;
    eopt.seed = args.seed;
    eopt.pool = &pool;
    auto gl = harness.run_case(
        "experiment_gain_loss/surge_" + format_double(surge, 2),
        [&] { return sim::experiment_gain_loss(m.network, {6}, eopt); });

    // Best single-target SA value at perfect knowledge (one ownership draw).
    Rng rng(args.seed);
    auto own = cps::Ownership::random(m.network.num_edges(), 6, rng);
    auto im = cps::compute_impact_matrix(m.network, own);
    double best_attack = 0.0;
    double welfare = 0.0;
    if (im.is_ok()) {
      welfare = im->base_welfare;
      core::AdversaryConfig cfg;
      cfg.max_targets = 1;
      core::StrategicAdversary sa(cfg);
      best_attack = sa.plan(im->matrix).anticipated_return;
    }
    t.add_numeric_row({surge, welfare, gl[0].mean_gain, -gl[0].mean_loss,
                       best_attack},
                      1);
  }
  bench::emit(t, args, "Ablation: scarcity (demand surge) vs attack economy");
  harness.emit_report();
  return 0;
}
