// Extension experiment (§II-D5): the time-domain model.
//
// Compares attack impacts measured on a single demand instance (the
// paper's evaluation) against a daily four-period horizon with generator
// ramp limits. Reports, for the five worst single-asset outages, the
// single-instance welfare loss vs the duration-weighted horizon loss —
// showing when the single-instance approximation under- or over-states
// an attack's economic damage.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "gridsec/flow/multiperiod.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_multiperiod", args, argc, argv);
  auto m = sim::build_western_us();
  const auto periods = flow::daily_periods();
  flow::RampSpec ramp;
  ramp.limit_fraction = 0.5;

  auto base_single = flow::solve_social_welfare(m.network);
  auto base_multi = flow::solve_multi_period(m.network, periods, ramp);
  if (!base_single.optimal() || !base_multi.optimal()) {
    std::fprintf(stderr, "base model failed\n");
    return 1;
  }
  const double horizon_hours = 24.0;

  struct Row {
    int edge;
    double single_loss;   // scaled to the full horizon for comparability
    double multi_loss;
  };
  auto rows = harness.run_case("outage_sweep_single_vs_horizon", [&] {
    std::vector<Row> out;
    for (int e = 0; e < m.network.num_edges(); ++e) {
      flow::Network hit = m.network;
      hit.set_capacity(e, 0.0);
      auto s = flow::solve_social_welfare(hit);
      auto mp = flow::solve_multi_period(hit, periods, ramp);
      if (!s.optimal() || !mp.optimal()) continue;
      out.push_back({e, (base_single.welfare - s.welfare) * horizon_hours,
                     base_multi.total_welfare - mp.total_welfare});
    }
    return out;
  });
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.multi_loss > b.multi_loss;
  });

  Table t({"asset", "single_instance_loss_24h", "horizon_loss",
           "ratio_multi/single"});
  for (std::size_t i = 0; i < rows.size() && i < 8; ++i) {
    const Row& r = rows[i];
    t.add_row({m.network.edge(r.edge).name,
               format_double(r.single_loss, 0),
               format_double(r.multi_loss, 0),
               format_double(
                   r.single_loss > 1e-9 ? r.multi_loss / r.single_loss : 0.0,
                   3)});
  }
  bench::emit(t, args,
              "Extension: single-instance vs daily-horizon attack impact");
  harness.emit_report();
  return 0;
}
