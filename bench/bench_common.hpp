// Shared plumbing for the figure-reproduction and micro benches: flag
// parsing, dual table/CSV emission, and the harness-v2 run-report sidecar.
//
// Every bench builds a `Harness` and funnels its timed work through
// `run_case()`: the harness runs warmup + N measured repetitions, records
// per-case wall-time stats (min/median/mean/stddev) and registry counter
// deltas (lp.simplex.pivots per solve, lp.bnb.nodes, ...), and — when
// --json[=FILE] is given — writes a schema-versioned BENCH_*.json report
// with full run provenance (git sha, build flags, seed, threads, args).
// `gridsec-benchdiff` compares two such reports; see docs/observability.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/obs/report.hpp"
#include "gridsec/obs/serve.hpp"
#include "gridsec/obs/telemetry.hpp"
#include "gridsec/util/table.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::bench {

struct BenchArgs {
  int trials = 20;
  std::uint64_t seed = 2015;
  bool csv_only = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  // --json[=FILE]: after the bench, write the harness run report (manifest
  // + per-case stats + metrics registry) to FILE (default
  // BENCH_<prog>.json). Empty = off.
  std::string json_file;
  // --profile[=FILE]: enable the self-profiler for the whole run and write
  // the gridsec.profile JSON to FILE (default PROF_<prog>.json) plus
  // flamegraph-ready folded stacks to FILE with a .folded suffix.
  std::string profile_file;
  // --reps=N / --warmup=N override the per-case defaults passed to
  // Harness::run_case (reps 0 / warmup -1 mean "use the case default").
  int reps = 0;
  int warmup = -1;
  // --metrics-port=N: serve GET /metrics (OpenMetrics) + /healthz +
  // /progress on 127.0.0.1:N for the duration of the bench (0 = ephemeral
  // port, printed to stderr; -1 = off). Unavailable under GRIDSEC_NO_SERVE.
  int metrics_port = -1;
  // --timeseries=FILE: run the telemetry sampler for the whole bench and
  // write the gridsec.timeseries artifact to FILE (.csv suffix = CSV).
  std::string timeseries_file;
  // --progress: mirror live progress/ETA heartbeats to stderr.
  bool progress = false;
};

[[noreturn]] inline void usage_exit(const char* prog, int code) {
  std::fprintf(stderr,
               "usage: %s [--trials=N] [--seed=S] [--threads=T] [--reps=N] "
               "[--warmup=N] [--csv] [--json[=FILE]] [--profile[=FILE]] "
               "[--metrics-port=N] [--timeseries=FILE] [--progress]\n",
               prog);
  std::exit(code);
}

inline std::string default_sidecar_name(const char* argv0, const char* kind) {
  std::string base = argv0;
  const std::size_t slash = base.find_last_of("/\\");
  if (slash != std::string::npos) base = base.substr(slash + 1);
  return std::string(kind) + "_" + base + ".json";
}

inline std::string default_json_name(const char* argv0) {
  return default_sidecar_name(argv0, "BENCH");
}

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  // Whole-value numeric parsing: reject trailing junk like --trials=5x.
  const auto parse_long = [&](const char* s, long* out) {
    char* end = nullptr;
    *out = std::strtol(s, &end, 10);
    return end != s && *end == '\0';
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&a](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    const auto malformed = [&]() {
      std::fprintf(stderr, "%s: malformed value in '%s'\n", argv[0],
                   a.c_str());
      usage_exit(argv[0], 2);
    };
    long v = 0;
    if (const char* s = value("--trials=")) {
      if (!parse_long(s, &v) || v <= 0) malformed();
      args.trials = static_cast<int>(v);
    } else if (const char* s = value("--seed=")) {
      // strtoull silently wraps negative inputs (--seed=-1 would become
      // 2^64-1); reject a leading '-' like the other numeric flags do.
      char* end = nullptr;
      args.seed = static_cast<std::uint64_t>(std::strtoull(s, &end, 10));
      if (*s == '-' || end == s || *end != '\0') malformed();
    } else if (const char* s = value("--threads=")) {
      if (!parse_long(s, &v) || v < 0) malformed();
      args.threads = static_cast<std::size_t>(v);
    } else if (const char* s = value("--reps=")) {
      if (!parse_long(s, &v) || v <= 0) malformed();
      args.reps = static_cast<int>(v);
    } else if (const char* s = value("--warmup=")) {
      if (!parse_long(s, &v) || v < 0) malformed();
      args.warmup = static_cast<int>(v);
    } else if (const char* s = value("--json=")) {
      args.json_file = s;
      if (args.json_file.empty()) malformed();
    } else if (a == "--json") {
      args.json_file = default_json_name(argv[0]);
    } else if (const char* s = value("--profile=")) {
      args.profile_file = s;
      if (args.profile_file.empty()) malformed();
    } else if (a == "--profile") {
      args.profile_file = default_sidecar_name(argv[0], "PROF");
    } else if (const char* s = value("--metrics-port=")) {
      if (!parse_long(s, &v) || v < 0 || v > 65535) malformed();
      args.metrics_port = static_cast<int>(v);
    } else if (const char* s = value("--timeseries=")) {
      args.timeseries_file = s;
      if (args.timeseries_file.empty()) malformed();
    } else if (a == "--progress") {
      args.progress = true;
    } else if (a == "--csv") {
      args.csv_only = true;
    } else if (a == "--help" || a == "-h") {
      usage_exit(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], a.c_str());
      usage_exit(argv[0], 2);
    }
  }
  return args;
}

inline void emit(const Table& table, const BenchArgs& args,
                 const char* title) {
  if (!args.csv_only) {
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
    std::cout << "\n# CSV\n";
  }
  table.print_csv(std::cout);
}

/// Benchmark harness v2: builds the run report case by case. Construct one
/// per bench main(), route timed work through run_case(), and call
/// emit_report() last (a no-op unless --json was given).
class Harness {
 public:
  Harness(std::string bench_name, const BenchArgs& args, int argc,
          char** argv)
      : args_(args),
        start_(std::chrono::steady_clock::now()) {
    report_.manifest = obs::RunManifest::capture(std::move(bench_name), argc,
                                                 argv);
    report_.manifest.seed = args.seed;
    report_.manifest.trials = args.trials;
    if (args.threads != 0) report_.manifest.threads = args.threads;
    if (!args_.profile_file.empty()) obs::Profiler::start();
    if (args_.metrics_port >= 0) {
      obs::TelemetryServerOptions sopts;
      sopts.port = args_.metrics_port;
      const Status st = server_.start(sopts);
      if (!st.is_ok()) {
        std::fprintf(stderr, "cannot start telemetry endpoint: %s\n",
                     st.to_string().c_str());
        std::exit(1);
      }
      std::fprintf(stderr, "metrics: http://127.0.0.1:%d/metrics\n",
                   server_.port());
    }
    if (!args_.timeseries_file.empty() || args_.progress) {
      obs::TelemetrySamplerOptions topts;
      topts.progress_to_stderr = args_.progress;
      const Status st = sampler_.start(topts);
      if (!st.is_ok()) {
        std::fprintf(stderr, "cannot start telemetry sampler: %s\n",
                     st.to_string().c_str());
        std::exit(1);
      }
    }
  }

  /// Runs `fn` default_warmup (unmeasured) + default_reps (measured) times
  /// — both overridable via --warmup/--reps — and records wall-time stats
  /// plus registry-counter deltas across the measured repetitions. Returns
  /// the last measured invocation's result.
  template <typename Fn>
  auto run_case(const std::string& name, Fn&& fn, int default_reps = 1,
                int default_warmup = 0) {
    const int reps = args_.reps > 0 ? args_.reps : default_reps;
    const int warmup = args_.warmup >= 0 ? args_.warmup : default_warmup;
    for (int i = 0; i < warmup; ++i) static_cast<void>(fn());
    // Publish heap-traffic totals so the counter deltas below include
    // obs.alloc.count/bytes for the measured reps (see obs/prof.hpp).
    obs::sync_alloc_counters();
    const auto before = obs::default_registry().counter_values();
    std::vector<double> seconds;
    seconds.reserve(static_cast<std::size_t>(reps));
    const auto timed = [&seconds](auto&& body) {
      const auto t0 = std::chrono::steady_clock::now();
      if constexpr (std::is_void_v<decltype(body())>) {
        body();
        seconds.push_back(elapsed_seconds(t0));
      } else {
        auto result = body();
        seconds.push_back(elapsed_seconds(t0));
        return result;
      }
    };
    for (int i = 0; i < reps - 1; ++i) static_cast<void>(timed(fn));
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&>>) {
      timed(fn);
      finish_case(name, warmup, seconds, before);
    } else {
      auto result = timed(fn);
      finish_case(name, warmup, seconds, before);
      return result;
    }
  }

  /// Writes the BENCH_*.json report when --json was given and the
  /// PROF_*.json + .folded profile when --profile was given. Call once,
  /// after every case ran.
  void emit_report() {
    emit_profile();
    emit_timeseries();
    server_.stop();
    if (args_.json_file.empty()) return;
    report_.manifest.wall_time_seconds = elapsed_seconds(start_);
    std::ofstream out(args_.json_file);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   args_.json_file.c_str());
      return;
    }
    report_.write_json(out, &obs::default_registry());
    std::fprintf(stderr, "report -> %s\n", args_.json_file.c_str());
  }

  [[nodiscard]] const obs::RunReport& report() const { return report_; }

 private:
  static double elapsed_seconds(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }

  void finish_case(const std::string& name, int warmup,
                   const std::vector<double>& seconds,
                   const std::map<std::string, std::int64_t>& before) {
    obs::sync_alloc_counters();
    report_.cases.push_back(obs::make_case(
        name, warmup, seconds, before,
        obs::default_registry().counter_values()));
  }

  void emit_timeseries() {
    if (!sampler_.running()) return;
    sampler_.stop();  // final sample = registry exit snapshot
    if (args_.timeseries_file.empty()) return;
    std::ofstream out(args_.timeseries_file);
    if (!out) {
      std::fprintf(stderr, "cannot write timeseries to '%s'\n",
                   args_.timeseries_file.c_str());
      return;
    }
    const obs::Timeseries ts = sampler_.snapshot();
    const std::string& f = args_.timeseries_file;
    if (f.size() >= 4 && f.compare(f.size() - 4, 4, ".csv") == 0) {
      obs::write_timeseries_csv(out, ts);
    } else {
      obs::write_timeseries_json(out, ts);
    }
    std::fprintf(stderr, "timeseries: %zu samples -> %s\n",
                 ts.samples.size(), f.c_str());
  }

  void emit_profile() {
    if (args_.profile_file.empty()) return;
    obs::Profiler::stop();
    const obs::Profile profile = obs::Profiler::snapshot();
    std::ofstream out(args_.profile_file);
    if (!out) {
      std::fprintf(stderr, "cannot write profile to '%s'\n",
                   args_.profile_file.c_str());
      return;
    }
    obs::write_profile_json(out, profile);
    const std::string folded_file = args_.profile_file + ".folded";
    std::ofstream folded(folded_file);
    if (folded) obs::write_profile_folded(folded, profile);
    std::fprintf(stderr, "profile -> %s (+ %s)\n",
                 args_.profile_file.c_str(), folded_file.c_str());
  }

  BenchArgs args_;
  obs::RunReport report_;
  std::chrono::steady_clock::time_point start_;
  obs::TelemetryServer server_;
  obs::TelemetrySampler sampler_;
};

}  // namespace gridsec::bench
