// Shared plumbing for the figure-reproduction benches: flag parsing and
// dual table/CSV emission, plus an optional metrics-JSON sidecar.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/util/table.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::bench {

struct BenchArgs {
  int trials = 20;
  std::uint64_t seed = 2015;
  bool csv_only = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  // --json[=FILE]: after the bench, dump the metrics registry as JSON to
  // FILE (default BENCH_<prog>.json). Empty = off.
  std::string json_file;
};

[[noreturn]] inline void usage_exit(const char* prog, int code) {
  std::fprintf(stderr,
               "usage: %s [--trials=N] [--seed=S] [--threads=T] [--csv] "
               "[--json[=FILE]]\n",
               prog);
  std::exit(code);
}

inline std::string default_json_name(const char* argv0) {
  std::string base = argv0;
  const std::size_t slash = base.find_last_of("/\\");
  if (slash != std::string::npos) base = base.substr(slash + 1);
  return "BENCH_" + base + ".json";
}

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  // Whole-value numeric parsing: reject trailing junk like --trials=5x.
  const auto parse_long = [&](const char* s, long* out) {
    char* end = nullptr;
    *out = std::strtol(s, &end, 10);
    return end != s && *end == '\0';
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&a](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    long v = 0;
    if (const char* s = value("--trials=")) {
      if (!parse_long(s, &v) || v <= 0) {
        std::fprintf(stderr, "%s: malformed value in '%s'\n", argv[0],
                     a.c_str());
        usage_exit(argv[0], 2);
      }
      args.trials = static_cast<int>(v);
    } else if (const char* s = value("--seed=")) {
      char* end = nullptr;
      args.seed = static_cast<std::uint64_t>(std::strtoull(s, &end, 10));
      if (end == s || *end != '\0') {
        std::fprintf(stderr, "%s: malformed value in '%s'\n", argv[0],
                     a.c_str());
        usage_exit(argv[0], 2);
      }
    } else if (const char* s = value("--threads=")) {
      if (!parse_long(s, &v) || v < 0) {
        std::fprintf(stderr, "%s: malformed value in '%s'\n", argv[0],
                     a.c_str());
        usage_exit(argv[0], 2);
      }
      args.threads = static_cast<std::size_t>(v);
    } else if (const char* s = value("--json=")) {
      args.json_file = s;
      if (args.json_file.empty()) {
        std::fprintf(stderr, "%s: malformed value in '%s'\n", argv[0],
                     a.c_str());
        usage_exit(argv[0], 2);
      }
    } else if (a == "--json") {
      args.json_file = default_json_name(argv[0]);
    } else if (a == "--csv") {
      args.csv_only = true;
    } else if (a == "--help" || a == "-h") {
      usage_exit(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], a.c_str());
      usage_exit(argv[0], 2);
    }
  }
  return args;
}

inline void emit(const Table& table, const BenchArgs& args,
                 const char* title) {
  if (!args.csv_only) {
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
    std::cout << "\n# CSV\n";
  }
  table.print_csv(std::cout);
}

/// Writes `{"bench":...,"trials":...,"seed":...,"metrics":{...}}` to
/// args.json_file when --json was given. Call once, after the bench ran.
inline void emit_metrics_json(const BenchArgs& args, const char* title) {
  if (args.json_file.empty()) return;
  std::ofstream out(args.json_file);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics to '%s'\n",
                 args.json_file.c_str());
    return;
  }
  out << "{\"bench\":\"" << title << "\",\"trials\":" << args.trials
      << ",\"seed\":" << args.seed << ",\"metrics\":";
  obs::default_registry().write_json(out);
  out << "}\n";
  std::fprintf(stderr, "metrics -> %s\n", args.json_file.c_str());
}

}  // namespace gridsec::bench
