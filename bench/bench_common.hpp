// Shared plumbing for the figure-reproduction benches: flag parsing and
// dual table/CSV emission.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "gridsec/util/table.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::bench {

struct BenchArgs {
  int trials = 20;
  std::uint64_t seed = 2015;
  bool csv_only = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&a](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = value("--trials=")) {
      args.trials = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      args.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--threads=")) {
      args.threads = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--csv") {
      args.csv_only = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: %s [--trials=N] [--seed=S] [--threads=T] [--csv]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

inline void emit(const Table& table, const BenchArgs& args,
                 const char* title) {
  if (!args.csv_only) {
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
    std::cout << "\n# CSV\n";
  }
  table.print_csv(std::cout);
}

}  // namespace gridsec::bench
