// Figure 3 (Experiment 2): strategic-adversary profitability vs. knowledge
// noise, for 2/4/6/12 actors, at most six targets. Expected shape: observed
// profit decreases with noise and increases with the number of actors.
#include "bench_common.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig3_adversary_noise", args, argc, argv);
  ThreadPool pool(args.threads);
  auto m = sim::build_western_us();

  sim::ExperimentOptions opt;
  opt.trials = args.trials;
  opt.seed = args.seed;
  opt.pool = &pool;

  sim::AdversaryNoiseConfig cfg;  // defaults match the paper's sweep
  auto points = harness.run_case("experiment_adversary_noise", [&] {
    return sim::experiment_adversary_noise(m.network, cfg, opt);
  });

  Table t({"actors", "sigma", "observed_profit", "se"});
  for (const auto& p : points) {
    t.add_numeric_row({static_cast<double>(p.actors), p.sigma, p.observed,
                       p.se_observed},
                      2);
  }
  bench::emit(t, args, "Figure 3: SA profitability vs noise and actors");
  harness.emit_report();
  return 0;
}
