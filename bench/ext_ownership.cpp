// Extension experiment: market structure vs the attack economy.
//
// The paper samples ownership uniformly. Real markets are structured —
// vertically integrated state utilities, or horizontal sector companies.
// This bench compares the Experiment-1 quantities and the strategic
// adversary's take across ownership structures on the western-US system.
#include "bench_common.hpp"
#include "gridsec/core/adversary.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/ownership_structures.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_ownership", args, argc, argv);
  auto m = sim::build_western_us();

  struct Case {
    const char* name;
    cps::Ownership own;
  };
  Rng rng(args.seed);
  Rng zipf_rng = rng.derive_stream(1);
  std::vector<Case> cases;
  {
    Rng uniform_rng = rng.derive_stream(0);
    cases.push_back({"uniform_6", cps::Ownership::random(
                                      m.network.num_edges(), 6, uniform_rng)});
  }
  cases.push_back({"vertical_by_state", sim::ownership_by_state(m)});
  cases.push_back({"horizontal_by_sector", sim::ownership_by_sector(m)});
  cases.push_back({"concentrated_zipf_6",
                   sim::ownership_concentrated(m.network.num_edges(), 6,
                                               zipf_rng)});

  Table t({"structure", "actors", "total_gain", "total_|loss|",
           "sa_return_6targets", "sa_actors_held"});
  for (const Case& c : cases) {
    auto im = harness.run_case(std::string("impact_matrix/") + c.name, [&] {
      return cps::compute_impact_matrix(m.network, c.own);
    });
    if (!im.is_ok()) {
      std::fprintf(stderr, "impact failed for %s\n", c.name);
      return 1;
    }
    core::AdversaryConfig cfg;
    cfg.max_targets = 6;
    core::StrategicAdversary sa(cfg);
    auto plan = sa.plan(im->matrix);
    t.add_row({c.name, std::to_string(c.own.active_actors()),
               format_double(im->matrix.aggregate_gain(), 0),
               format_double(-im->matrix.aggregate_loss(), 0),
               format_double(plan.anticipated_return, 0),
               std::to_string(plan.actors.size())});
  }
  bench::emit(t, args, "Extension: ownership structure vs attack economy");
  if (!args.csv_only) {
    std::printf(
        "\nVertical integration internalizes cross-asset harm (a state\n"
        "utility hurt everywhere it operates); horizontal sector splits\n"
        "concentrate gains in whole sectors and widen the SA's options.\n");
  }
  harness.emit_report();
  return 0;
}
