// Extension experiment: do topological vulnerability metrics predict
// economic attack impact?
//
// The paper's related work cites electrical-betweenness ranking [32] and
// the critique that topology is a poor proxy for grid vulnerability [33].
// This bench computes, on the western-US system, the Spearman rank
// correlation between each asset's (a) source-sink betweenness and (b) max
// deliverability, against its true economic criticality |Δ welfare| under
// an outage — quantifying how much a purely structural ranking misses.
#include <cmath>

#include "bench_common.hpp"
#include "gridsec/flow/analysis.hpp"
#include "gridsec/sim/western_us.hpp"
#include "gridsec/util/stats.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_topology_vs_impact", args, argc, argv);
  auto m = sim::build_western_us();

  auto base = flow::solve_social_welfare(m.network);
  if (!base.optimal()) {
    std::fprintf(stderr, "base failed\n");
    return 1;
  }
  const int ne = m.network.num_edges();
  const auto impact = harness.run_case("outage_impact_sweep", [&] {
    std::vector<double> out(static_cast<std::size_t>(ne), 0.0);
    for (int e = 0; e < ne; ++e) {
      flow::Network hit = m.network;
      hit.set_capacity(e, 0.0);
      auto sol = flow::solve_social_welfare(hit);
      if (sol.optimal()) {
        out[static_cast<std::size_t>(e)] = base.welfare - sol.welfare;
      }
    }
    return out;
  });
  auto betweenness = harness.run_case("source_sink_betweenness", [&] {
    return flow::source_sink_betweenness(m.network);
  });
  // Flow-weighted utilization as a third, semi-structural predictor.
  std::vector<double> utilization(static_cast<std::size_t>(ne), 0.0);
  for (int e = 0; e < ne; ++e) {
    utilization[static_cast<std::size_t>(e)] =
        base.flow[static_cast<std::size_t>(e)];
  }

  Table t({"predictor", "spearman_vs_impact", "pearson_vs_impact"});
  t.add_row({"source_sink_betweenness",
             format_double(spearman_correlation(betweenness, impact), 3),
             format_double(correlation(betweenness, impact), 3)});
  t.add_row({"dispatched_flow",
             format_double(spearman_correlation(utilization, impact), 3),
             format_double(correlation(utilization, impact), 3)});
  bench::emit(t, args,
              "Extension: topological rankings vs economic outage impact");

  // Top-5 by each ranking for a qualitative look.
  const auto top5 = [&](const std::vector<double>& score) {
    std::vector<int> order(static_cast<std::size_t>(ne));
    for (int e = 0; e < ne; ++e) order[static_cast<std::size_t>(e)] = e;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return score[static_cast<std::size_t>(a)] >
             score[static_cast<std::size_t>(b)];
    });
    std::string out;
    for (int k = 0; k < 5; ++k) {
      if (k) out += " ";
      out += m.network.edge(order[static_cast<std::size_t>(k)]).name;
    }
    return out;
  };
  Table tops({"ranking", "top5"});
  tops.add_row({"economic_impact", top5(impact)});
  tops.add_row({"betweenness", top5(betweenness)});
  tops.add_row({"dispatched_flow", top5(utilization)});
  bench::emit(tops, args, "Top-5 assets by ranking");
  harness.emit_report();
  return 0;
}
