// Figure 7 (Experiment 3): collaboration benefit across actor counts with
// a fixed system-wide defensive budget. Expected shape: collaboration
// helps more as actors multiply (more aligned-victim opportunities), but
// the benefit is counteracted at high actor counts by dwindling per-actor
// budgets (the Fig 5 force).
#include "bench_common.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig7_collaboration_actors", args, argc, argv);
  ThreadPool pool(args.threads);
  auto m = sim::build_western_us();

  sim::ExperimentOptions opt;
  opt.trials = args.trials;
  opt.seed = args.seed;
  opt.pool = &pool;

  sim::DefenseExperimentConfig cfg;
  cfg.actor_counts = {2, 4, 6, 12};
  cfg.defender_sigmas = {0.1};  // moderate, fixed knowledge level

  cfg.collaborative = false;
  auto individual = harness.run_case("experiment_defense_individual", [&] {
    return sim::experiment_defense(m.network, cfg, opt);
  });
  cfg.collaborative = true;
  auto collaborative =
      harness.run_case("experiment_defense_collaborative", [&] {
        return sim::experiment_defense(m.network, cfg, opt);
      });

  Table t({"actors", "individual", "collaborative", "collab_benefit",
           "individual_rel", "collaborative_rel", "se_individual",
           "se_collaborative"});
  for (std::size_t i = 0; i < individual.size(); ++i) {
    t.add_numeric_row({static_cast<double>(individual[i].actors),
                       individual[i].effectiveness,
                       collaborative[i].effectiveness,
                       collaborative[i].effectiveness -
                           individual[i].effectiveness,
                       individual[i].relative_effectiveness,
                       collaborative[i].relative_effectiveness,
                       individual[i].se, collaborative[i].se},
                      2);
  }
  bench::emit(t, args, "Figure 7: collaboration benefit vs actor count");
  harness.emit_report();
  return 0;
}
