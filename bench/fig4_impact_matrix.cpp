// The warm-start hot path in isolation: the impact matrix IM[a,t] (§II-D3)
// recomputed over noisy sibling views of the western-US system — the inner
// loop of Experiment 2 (Figure 4) and of every defender belief update.
//
// Two cases solve the *same* sequence of noisy views:
//   impact_matrix_cold  — warm starts disabled process-wide
//                         (lp::set_warm_start_enabled(false));
//   impact_matrix_warm  — default path: each matrix seeds the next through
//                         ImpactResult::base_basis, and every per-target
//                         attacked solve warm-starts from its run's base.
//
// The run report's per-case counter deltas (lp.simplex.refactorizations,
// .warm_starts, .pivots, .eta_updates) are what the CI perf gate pins:
// dense factorization work must stay an order of magnitude below the
// per-pivot-refactorization count (= pivots), and the warm case must keep
// beating the cold one.
#include "bench_common.hpp"
#include "gridsec/cps/impact.hpp"
#include "gridsec/cps/perturbation.hpp"
#include "gridsec/lp/basis.hpp"
#include "gridsec/sim/western_us.hpp"
#include "gridsec/util/error.hpp"
#include "gridsec/util/rng.hpp"

namespace {

std::int64_t counter(const char* name) {
  return gridsec::obs::default_registry().counter(name).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig4_impact_matrix", args, argc, argv);
  auto m = sim::build_western_us();
  Rng owner_rng(args.seed);
  const auto owners = cps::Ownership::random(
      static_cast<int>(m.network.num_edges()), 6, owner_rng);

  cps::NoiseSpec noise;
  noise.sigma = 0.05;

  // Both cases see bit-identical view sequences: trial t's view is drawn
  // from the derived stream t of the bench seed, independent of mode.
  const auto sweep = [&](bool warm) {
    cps::ImpactOptions impact;
    Rng parent(args.seed);
    for (int t = 0; t < args.trials; ++t) {
      Rng rng = parent.derive_stream(static_cast<std::uint64_t>(t));
      const flow::Network view = cps::perturb_knowledge(m.network, noise, rng);
      auto im = cps::compute_impact_matrix(view, owners, impact);
      GRIDSEC_ASSERT(im.is_ok());
      if (warm) impact.warm_start = std::move(im->base_basis);
    }
  };

  struct Row {
    const char* mode;
    std::int64_t solves = 0;
    std::int64_t pivots = 0;
    std::int64_t refactorizations = 0;
    std::int64_t eta_updates = 0;
    std::int64_t warm_starts = 0;
  };
  const auto measure = [&](const char* case_name, const char* mode,
                           bool warm) {
    Row row{mode};
    row.solves = -counter("lp.simplex.solves");
    row.pivots = -counter("lp.simplex.pivots");
    row.refactorizations = -counter("lp.simplex.refactorizations");
    row.eta_updates = -counter("lp.simplex.eta_updates");
    row.warm_starts = -counter("lp.simplex.warm_starts");
    lp::set_warm_start_enabled(warm);
    harness.run_case(case_name, [&] { sweep(warm); });
    lp::set_warm_start_enabled(true);
    row.solves += counter("lp.simplex.solves");
    row.pivots += counter("lp.simplex.pivots");
    row.refactorizations += counter("lp.simplex.refactorizations");
    row.eta_updates += counter("lp.simplex.eta_updates");
    row.warm_starts += counter("lp.simplex.warm_starts");
    return row;
  };

  const Row cold = measure("impact_matrix_cold", "cold", false);
  const Row warm = measure("impact_matrix_warm", "warm", true);

  Table t({"mode", "solves", "pivots", "refactorizations", "eta_updates",
           "warm_starts", "pivots/solve"});
  for (const Row& r : {cold, warm}) {
    t.add_row({r.mode, std::to_string(r.solves), std::to_string(r.pivots),
               std::to_string(r.refactorizations),
               std::to_string(r.eta_updates), std::to_string(r.warm_starts),
               std::to_string(r.solves == 0
                                  ? 0.0
                                  : static_cast<double>(r.pivots) /
                                        static_cast<double>(r.solves))});
  }
  bench::emit(t, args,
              "Figure 4 hot path: impact matrix, cold vs warm-started");
  harness.emit_report();
  return 0;
}
