// Extension experiment: contagion approximation vs physical-flow impact.
//
// The paper's opening argument: interdependence in energy CPS should be
// "measured on the physical side ... rather than approximated via
// contagion." This bench quantifies it — the contagion baseline's expected
// damage ranking is correlated against the true economic outage impact on
// the western-US system, across cascade transmission probabilities.
#include <array>

#include "bench_common.hpp"
#include "gridsec/cps/contagion.hpp"
#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/sim/western_us.hpp"
#include "gridsec/util/stats.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_contagion", args, argc, argv);
  auto m = sim::build_western_us();

  auto base = flow::solve_social_welfare(m.network);
  if (!base.optimal()) {
    std::fprintf(stderr, "base failed\n");
    return 1;
  }
  const int ne = m.network.num_edges();
  const auto impact = harness.run_case("outage_impact_sweep", [&] {
    std::vector<double> out(static_cast<std::size_t>(ne), 0.0);
    for (int e = 0; e < ne; ++e) {
      flow::Network hit = m.network;
      hit.set_capacity(e, 0.0);
      auto sol = flow::solve_social_welfare(hit);
      if (sol.optimal()) {
        out[static_cast<std::size_t>(e)] = base.welfare - sol.welfare;
      }
    }
    return out;
  });

  Table t({"transmission_prob", "spearman_vs_impact", "pearson_vs_impact"});
  const auto correlations =
      harness.run_case("contagion_correlation_sweep", [&] {
        std::vector<std::array<double, 3>> out;
        for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
          cps::ContagionModel model;
          model.transmission_prob = p;
          auto damage = cps::contagion_expected_damage(m.network, model);
          out.push_back({p, spearman_correlation(damage, impact),
                         correlation(damage, impact)});
        }
        return out;
      });
  for (const auto& row : correlations) {
    t.add_numeric_row({row[0], row[1], row[2]}, 3);
  }
  bench::emit(t, args,
              "Extension: contagion-predicted damage vs true outage impact");
  if (!args.csv_only) {
    std::printf(
        "\nLow correlations support the paper's thesis: contagion models\n"
        "miss which assets actually matter economically.\n");
  }
  harness.emit_report();
  return 0;
}
