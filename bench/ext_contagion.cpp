// Extension experiment: contagion approximation vs physical-flow impact.
//
// The paper's opening argument: interdependence in energy CPS should be
// "measured on the physical side ... rather than approximated via
// contagion." This bench quantifies it — the contagion baseline's expected
// damage ranking is correlated against the true economic outage impact on
// the western-US system, across cascade transmission probabilities.
#include "bench_common.hpp"
#include "gridsec/cps/contagion.hpp"
#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/sim/western_us.hpp"
#include "gridsec/util/stats.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  auto m = sim::build_western_us();

  auto base = flow::solve_social_welfare(m.network);
  if (!base.optimal()) {
    std::fprintf(stderr, "base failed\n");
    return 1;
  }
  const int ne = m.network.num_edges();
  std::vector<double> impact(static_cast<std::size_t>(ne), 0.0);
  for (int e = 0; e < ne; ++e) {
    flow::Network hit = m.network;
    hit.set_capacity(e, 0.0);
    auto sol = flow::solve_social_welfare(hit);
    if (sol.optimal()) {
      impact[static_cast<std::size_t>(e)] = base.welfare - sol.welfare;
    }
  }

  Table t({"transmission_prob", "spearman_vs_impact", "pearson_vs_impact"});
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    cps::ContagionModel model;
    model.transmission_prob = p;
    auto damage = cps::contagion_expected_damage(m.network, model);
    t.add_numeric_row({p, spearman_correlation(damage, impact),
                       correlation(damage, impact)},
                      3);
  }
  bench::emit(t, args,
              "Extension: contagion-predicted damage vs true outage impact");
  if (!args.csv_only) {
    std::printf(
        "\nLow correlations support the paper's thesis: contagion models\n"
        "miss which assets actually matter economically.\n");
  }
  return 0;
}
