// Reusable solver workspace: all per-solve simplex state in one place.
//
// A SolverWorkspace owns the solver's entire mutable state — tableau
// columns, bounds, costs, the current point, basis indices, pricing
// vectors, warm-start repair scratch — carved from a single util::Arena
// buffer, plus the BasisFactorization whose LU/eta storage is itself
// contiguous and capacity-reused. The lifecycle is solve → reset → solve:
// each solve re-binds the workspace to the problem's shape (one arena
// rewind + pointer carving, no heap traffic once the arena has grown to
// the high-water mark), so a caller that solves the same-shaped LP in a
// loop — impact matrices, Monte Carlo trials, B&B nodes, game rounds —
// performs zero steady-state allocations inside the solver.
//
// Ownership rules:
//   - One workspace, one thread. Nothing here is synchronized.
//   - Callers normally don't touch this type at all: every solve without
//     an explicit SimplexOptions::workspace uses thread_solver_workspace(),
//     which lives in the thread-pool worker's scratch slot (or a plain
//     thread_local off-pool). Pass an explicit workspace only when the
//     solver state must outlive the solve (analyze_sensitivity does this
//     for its final-tableau views).
//   - A workspace is reused, not shared: a nested solve that finds the
//     workspace already in use (e.g. a solve inside a simplex observer)
//     falls back to a heap-allocated impl for that solve, counted in
//     lp.workspace.nested_fallbacks.
#pragma once

#include <cstddef>
#include <memory>

namespace gridsec::util {
class Arena;
}

namespace gridsec::lp {

namespace detail {
struct WorkspaceImpl;
}

class SolverWorkspace {
 public:
  SolverWorkspace();
  ~SolverWorkspace();

  SolverWorkspace(const SolverWorkspace&) = delete;
  SolverWorkspace& operator=(const SolverWorkspace&) = delete;

  /// Releases all carved state and frees the arena. The next solve
  /// re-grows it; reset() is for reclaiming memory after an unusually
  /// large problem, not part of the per-solve cycle (solves re-bind
  /// automatically).
  void reset();

  struct Stats {
    std::size_t arena_capacity = 0;   // bytes reserved by the arena
    std::size_t arena_high_water = 0; // max bytes a single bind carved
    std::size_t binds = 0;            // solve → reset → solve cycles
  };
  [[nodiscard]] Stats stats() const;

  /// The arena backing this workspace (for diagnostics and tests).
  [[nodiscard]] util::Arena& arena();

  /// Internal: the solver-facing state block.
  [[nodiscard]] detail::WorkspaceImpl& impl() { return *impl_; }

 private:
  std::unique_ptr<detail::WorkspaceImpl> impl_;
};

/// The calling thread's default workspace. On a thread-pool worker this is
/// the worker's WorkerScratch slot — born with the worker, reused by every
/// task it runs, destroyed when the pool joins. Off-pool it is a plain
/// thread_local. Either way: one instance per thread, valid for the
/// thread's lifetime.
SolverWorkspace& thread_solver_workspace();

}  // namespace gridsec::lp
