// LP presolve: cheap reductions applied before the simplex.
//
// Reductions (iterated to a fixpoint):
//   * fixed variables (lower == upper) are substituted into rows;
//   * empty rows are checked and dropped;
//   * singleton rows (one variable) become bound tightenings and are
//     dropped — conflicting bounds prove infeasibility;
//   * variables that appear in no row are fixed at their objective-optimal
//     bound (an unbounded improving direction proves unboundedness).
//
// Postsolve maps a reduced-problem Solution back to the original variable
// space. Duals are mapped for surviving rows only; rows removed by
// presolve report dual 0 (a singleton row that is actually binding can
// carry a nonzero true dual — callers needing exact duals on such rows
// should solve without presolve).
#pragma once

#include <optional>
#include <vector>

#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"

namespace gridsec::lp {

struct PresolveStats {
  int fixed_variables = 0;
  int removed_rows = 0;
  int tightened_bounds = 0;
  int free_variables_fixed = 0;
  int passes = 0;
};

class Presolved {
 public:
  /// The reduced problem (valid only when verdict() is kReduced).
  [[nodiscard]] const Problem& reduced() const { return reduced_; }

  enum class Verdict {
    kReduced,     // solve reduced(), then postsolve()
    kSolved,      // presolve fixed everything; postsolve a dummy Solution
    kInfeasible,  // proven infeasible without the simplex
    kUnbounded,   // proven unbounded without the simplex
  };
  [[nodiscard]] Verdict verdict() const { return verdict_; }
  [[nodiscard]] const PresolveStats& stats() const { return stats_; }

  /// Maps a solution of reduced() back to the original problem's space.
  /// For verdict kSolved, pass a default-constructed optimal Solution.
  [[nodiscard]] Solution postsolve(const Solution& reduced_solution) const;

 private:
  friend Presolved presolve(const Problem& problem);

  Problem reduced_;
  const Problem* original_ = nullptr;
  Verdict verdict_ = Verdict::kReduced;
  PresolveStats stats_;
  // Per original variable: fixed value, or the reduced-column index.
  std::vector<std::optional<double>> fixed_value_;
  std::vector<int> reduced_column_;   // -1 when fixed
  std::vector<int> reduced_row_;      // -1 when removed
  double objective_offset_ = 0.0;
};

/// Runs presolve on `problem`. The returned object references `problem`
/// (it must outlive the Presolved instance).
Presolved presolve(const Problem& problem);

/// Convenience: presolve + simplex + postsolve.
Solution solve_lp_with_presolve(const Problem& problem,
                                const SimplexOptions& options = {});

struct EquilibrateOptions {
  int max_passes = 10;  // Ruiz iterations (each sweeps rows then columns)
};

/// Ruiz row/column equilibration of a Problem: iteratively scales each
/// constraint row by 1/sqrt(max|coef|) and each column likewise until
/// every row and column maximum sits near 1. All factors are rounded to
/// powers of two, so scaling and unscaling are bit-exact in binary
/// floating point — certify() residuals computed on the unscaled solution
/// are residuals of the *original* problem, not a rescaled proxy.
///
/// Contract (r_i = row factor, c_j = column factor, both > 0):
///   scaled coefficient  a'_ij = r_i · a_ij · c_j
///   scaled rhs          b'_i  = r_i · b_i        (senses unchanged)
///   scaled bounds       l_j/c_j ≤ x'_j ≤ u_j/c_j (+inf stays +inf)
///   scaled objective    obj'_j = obj_j · c_j
/// so x'_j = x_j / c_j and the objective value is identical on both
/// problems. unscale() maps x_j = c_j·x'_j, duals y_i = r_i·y'_i, reduced
/// costs d_j = d'_j / c_j; basis statuses transfer unchanged (scaling by
/// positive factors preserves which bound a variable rests at).
///
/// Integrality markers are copied but NOT respected: a scaled integer
/// column's lattice is no longer Z, so equilibrate only serves continuous
/// (re)solves — the recovery ladder's equilibrated rung and LP
/// relaxations. The scaled problem must not be fed to the MILP solver.
class Equilibrated {
 public:
  /// The scaled problem; solve it, then map back with unscale().
  [[nodiscard]] const Problem& scaled() const { return scaled_; }
  /// False when every factor rounded to 1 — the problem was already
  /// well-scaled and scaled() is a plain copy.
  [[nodiscard]] bool scaled_any() const { return scaled_any_; }
  [[nodiscard]] const std::vector<double>& row_scale() const {
    return row_scale_;
  }
  [[nodiscard]] const std::vector<double>& col_scale() const {
    return col_scale_;
  }

  /// Maps a solution of scaled() back to the original problem's space
  /// (primal, duals, reduced costs; status/iterations/basis/objective
  /// pass through — the objective is bit-identical by the power-of-two
  /// construction).
  [[nodiscard]] Solution unscale(const Solution& scaled_solution) const;

  /// The exact inverse of unscale(): maps an original-space solution into
  /// scaled() space (unscale(rescale(s)) == s bit-for-bit, powers of two).
  /// This is how scale-invariant certification works: a constraint row
  /// scaled down to ~1e-12 hides its violations below certify()'s
  /// relative tolerances, but on the equilibrated problem every row is
  /// O(1), so certifying rescale(s) against scaled() sees them.
  [[nodiscard]] Solution rescale(const Solution& original_solution) const;

 private:
  friend Equilibrated equilibrate(const Problem& problem,
                                  const EquilibrateOptions& options);

  Problem scaled_;
  std::vector<double> row_scale_;
  std::vector<double> col_scale_;
  bool scaled_any_ = false;
};

/// Computes the Ruiz equilibration of `problem` (see Equilibrated).
Equilibrated equilibrate(const Problem& problem,
                         const EquilibrateOptions& options = {});

}  // namespace gridsec::lp
