// LP presolve: cheap reductions applied before the simplex.
//
// Reductions (iterated to a fixpoint):
//   * fixed variables (lower == upper) are substituted into rows;
//   * empty rows are checked and dropped;
//   * singleton rows (one variable) become bound tightenings and are
//     dropped — conflicting bounds prove infeasibility;
//   * variables that appear in no row are fixed at their objective-optimal
//     bound (an unbounded improving direction proves unboundedness).
//
// Postsolve maps a reduced-problem Solution back to the original variable
// space. Duals are mapped for surviving rows only; rows removed by
// presolve report dual 0 (a singleton row that is actually binding can
// carry a nonzero true dual — callers needing exact duals on such rows
// should solve without presolve).
#pragma once

#include <optional>
#include <vector>

#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"

namespace gridsec::lp {

struct PresolveStats {
  int fixed_variables = 0;
  int removed_rows = 0;
  int tightened_bounds = 0;
  int free_variables_fixed = 0;
  int passes = 0;
};

class Presolved {
 public:
  /// The reduced problem (valid only when verdict() is kReduced).
  [[nodiscard]] const Problem& reduced() const { return reduced_; }

  enum class Verdict {
    kReduced,     // solve reduced(), then postsolve()
    kSolved,      // presolve fixed everything; postsolve a dummy Solution
    kInfeasible,  // proven infeasible without the simplex
    kUnbounded,   // proven unbounded without the simplex
  };
  [[nodiscard]] Verdict verdict() const { return verdict_; }
  [[nodiscard]] const PresolveStats& stats() const { return stats_; }

  /// Maps a solution of reduced() back to the original problem's space.
  /// For verdict kSolved, pass a default-constructed optimal Solution.
  [[nodiscard]] Solution postsolve(const Solution& reduced_solution) const;

 private:
  friend Presolved presolve(const Problem& problem);

  Problem reduced_;
  const Problem* original_ = nullptr;
  Verdict verdict_ = Verdict::kReduced;
  PresolveStats stats_;
  // Per original variable: fixed value, or the reduced-column index.
  std::vector<std::optional<double>> fixed_value_;
  std::vector<int> reduced_column_;   // -1 when fixed
  std::vector<int> reduced_row_;      // -1 when removed
  double objective_offset_ = 0.0;
};

/// Runs presolve on `problem`. The returned object references `problem`
/// (it must outlive the Presolved instance).
Presolved presolve(const Problem& problem);

/// Convenience: presolve + simplex + postsolve.
Solution solve_lp_with_presolve(const Problem& problem,
                                const SimplexOptions& options = {});

}  // namespace gridsec::lp
