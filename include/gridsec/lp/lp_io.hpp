// Debug serialization of a Problem in CPLEX-LP-ish text format, so models
// can be eyeballed or fed to an external solver for cross-validation.
#pragma once

#include <iosfwd>
#include <string>

#include "gridsec/lp/problem.hpp"

namespace gridsec::lp {

/// Writes `problem` in LP text format. Variable/constraint names are
/// sanitized (non-alphanumerics replaced with '_'); unnamed entities get
/// x<i> / c<i>.
void write_lp_format(std::ostream& os, const Problem& problem);

/// Convenience: LP format as a string.
std::string to_lp_format(const Problem& problem);

}  // namespace gridsec::lp
