// Debug serialization of a Problem in CPLEX-LP-ish text format, so models
// can be eyeballed, fed to an external solver for cross-validation, or
// committed as on-disk corpora (tests/data/illcond) and read back.
#pragma once

#include <iosfwd>
#include <string>

#include "gridsec/lp/problem.hpp"

namespace gridsec::lp {

/// Writes `problem` in LP text format. Variable/constraint names are
/// sanitized (non-alphanumerics replaced with '_'); unnamed entities get
/// x<i> / c<i>. Numbers carry round-trip (max_digits10) precision so
/// write→parse reproduces coefficients bit-exactly.
void write_lp_format(std::ostream& os, const Problem& problem);

/// Convenience: LP format as a string.
std::string to_lp_format(const Problem& problem);

/// Writes to_lp_format(problem) to `path` (kInternal on I/O failure).
Status write_lp_file(const std::string& path, const Problem& problem);

/// Parses the dialect write_lp_format emits: a Minimize/Maximize header,
/// an " obj:" expression, "Subject To" rows ("name: expr {<=,>=,=} rhs"),
/// a "Bounds" section listing every variable in index order ("L <= name"
/// or "L <= name <= U"), an optional "General" section of integer
/// variables (bounds [0,1] map back to kBinary), and "End". Malformed
/// input yields kInvalidArgument; the parser never aborts.
[[nodiscard]] StatusOr<Problem> parse_lp_format(const std::string& text);

/// Reads `path` and parses it (kNotFound when unreadable).
[[nodiscard]] StatusOr<Problem> read_lp_file(const std::string& path);

}  // namespace gridsec::lp
