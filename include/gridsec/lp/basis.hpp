// Simplex basis state and incremental basis factorization.
//
// Two pieces that together make the solver warm-startable:
//
//   1. Basis — the combinatorial part of a simplex solution: one
//      kBasic/kAtLower/kAtUpper status per structural variable and per
//      constraint row (a row is kBasic when its slack — or, degenerately,
//      its artificial — is basic). It is tiny, copyable, and serializable
//      (`to_string`/`parse_basis`), so it can ride on lp::Solution, be
//      passed back in via SimplexOptions::warm_start, and be recorded in
//      audit bundles. A stale or incompatible basis is never an error:
//      the solver crash-repairs it (see docs/solvers.md).
//
//   2. BasisFactorization — an LU factorization of the m x m basis matrix
//      B (partial pivoting), kept current across pivots by product-form
//      eta updates instead of refactorizing from scratch. A pivot that
//      replaces the basic column in row p with an entering column whose
//      ftran image is w appends the eta (p, w); ftran/btran then apply
//      the base LU solve plus the eta chain. The factorization is rebuilt
//      ("refactorized") when the eta chain grows past a threshold or an
//      update pivot is too small to be trusted — O(m^3) once per
//      refactorization instead of per pivot.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gridsec/util/error.hpp"
#include "gridsec/util/matrix.hpp"

namespace gridsec::lp {

/// Status of one variable (or constraint row) in a simplex basis.
enum class VarStatus : unsigned char { kBasic, kAtLower, kAtUpper };

/// The combinatorial state of a simplex solution: per-structural-variable
/// and per-row statuses. Empty vectors mean "no basis available".
struct Basis {
  std::vector<VarStatus> variables;
  std::vector<VarStatus> rows;

  [[nodiscard]] bool empty() const {
    return variables.empty() && rows.empty();
  }

  bool operator==(const Basis& rhs) const = default;
};

/// Compact text form, e.g. "v:BLU|r:LB" (B=basic, L=at-lower, U=at-upper).
/// An empty basis serializes to "v:|r:".
[[nodiscard]] std::string to_string(const Basis& basis);

/// Parses the `to_string` form. Unknown status letters or a malformed
/// frame yield kInvalidArgument.
[[nodiscard]] StatusOr<Basis> parse_basis(std::string_view text);

/// Process-global warm-start kill switch (default: enabled). When
/// disabled, every solver ignores SimplexOptions::warm_start and solves
/// cold — the `gridsec_cli --warm-start=off` escape hatch for A/B
/// debugging. Thread-safe (relaxed atomic).
void set_warm_start_enabled(bool enabled);
[[nodiscard]] bool warm_start_enabled();

/// LU factorization of a basis matrix with product-form (eta) updates.
///
/// Conventions: refactorize() computes P*B = L*U with partial pivoting.
/// update(p, w) records that the basic column in position p was replaced
/// by a column a_q with w = B^{-1} a_q (w computed via ftran *before* the
/// update) — i.e. B_new = B_old * E where E is the identity with column p
/// replaced by w. ftran/btran then solve against B_new without touching
/// the LU factors.
///
/// Storage is workspace-grade: the eta chain lives in one flat pool
/// (k·m doubles, cleared-not-freed at refactorize) and every solve's
/// intermediates live in member scratch vectors that keep their capacity,
/// so a factorization reused across solves of the same shape performs no
/// heap allocation after its first cycle. The scratch makes even const
/// solves non-reentrant: an instance belongs to one thread / one solver
/// workspace and must not be shared.
class BasisFactorization {
 public:
  /// Factorizes `b` (square). Discards any eta chain. Returns false when
  /// `b` is singular (pivot below `pivot_tol`); all factorization state
  /// (LU, permutation, stored basis copy) is reset so the object is
  /// cleanly invalid — not half-factorized — until the next successful
  /// refactorize.
  bool refactorize(const Matrix& b);

  /// x := B^{-1} x. Requires valid().
  void ftran(std::span<double> x) const;

  /// y := B^{-T} y. Requires valid().
  void btran(std::span<double> y) const;

  /// x := B_new^{-1} x with iterative refinement: after the base solve the
  /// true residual r = rhs − B_new·x is formed against the stored copy of
  /// the basis matrix plus the eta chain, and correction steps
  /// x += B_new^{-1} r are applied while they improve (at most
  /// kMaxRefineSteps). Returns the number of correction steps taken; when
  /// `residual_out` is non-null it receives the final relative residual
  /// ‖r‖_∞ / (1 + ‖rhs‖_∞). Requires valid().
  int ftran_refined(std::span<double> x,
                    double* residual_out = nullptr) const;

  /// y := B_new^{-T} y with iterative refinement (see ftran_refined).
  int btran_refined(std::span<double> y,
                    double* residual_out = nullptr) const;

  /// Appends the eta for a pivot in position `p` with direction `w`
  /// (= B^{-1} a_entering), copying it into the flat eta pool. Returns
  /// false — and leaves the factorization unchanged — when |w[p]| is too
  /// small to pivot on; the caller should refactorize from the updated
  /// basis matrix instead.
  bool update(int p, std::span<const double> w);

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] std::size_t size() const { return perm_.size(); }
  [[nodiscard]] std::size_t eta_count() const { return eta_rows_.size(); }

  /// Worst-case growth indicator for the current factorization: the max of
  /// the LU element growth observed at the last refactorize
  /// (max|U| / max|B|) and the largest accepted eta ratio max|w| / |w_p|
  /// since. Values past ~1e6 mean the eta chain is amplifying rounding by
  /// that factor per application; the simplex driver refactorizes early
  /// when it sees one (counted in lp.basis.residual_refactorizations).
  [[nodiscard]] double pivot_growth() const { return pivot_growth_; }

  /// Eta chain length past which the caller should refactorize: the
  /// chain costs O(m) per solve per eta and accumulates rounding.
  static constexpr std::size_t kRefactorInterval = 64;
  /// Smallest acceptable pivot magnitude, for both LU and eta updates.
  static constexpr double kPivotTol = 1e-11;
  /// Smallest eta pivot relative to max|w|: applying an eta divides by
  /// w[p], so a pivot this much smaller than the direction's largest
  /// entry would amplify rounding by >1e7 per application. update()
  /// refuses such pivots and the caller refactorizes densely.
  static constexpr double kEtaStabilityTol = 1e-7;
  /// Cap on iterative-refinement correction steps per refined solve; one
  /// step recovers nearly all attainable accuracy in double precision, the
  /// second catches pathological conditioning.
  static constexpr int kMaxRefineSteps = 2;
  /// Relative residual below which a refined solve stops correcting.
  static constexpr double kRefineTol = 1e-12;
  /// pivot_growth() past this means the factorization is amplifying
  /// rounding enough to distrust incremental values; callers refactorize.
  static constexpr double kGrowthRefactorLimit = 1e6;

 private:
  /// r := rhs − B_new·x (B_new = stored B · eta chain); returns ‖r‖_∞.
  double residual_ftran(std::span<const double> x,
                        std::span<const double> rhs,
                        std::vector<double>& r) const;
  /// r := rhs − B_new^T·y; returns ‖r‖_∞.
  double residual_btran(std::span<const double> y,
                        std::span<const double> rhs,
                        std::vector<double>& r) const;

  Matrix lu_;              // L strictly below the diagonal (unit), U on/above
  Matrix b_;               // copy of B at the last refactorize (residuals)
  std::vector<int> perm_;  // row permutation: (P*B)[i] = B[perm_[i]]
  /// Eta chain, contiguous: eta k is rows eta_rows_[k] and direction
  /// eta_pool_[k*m .. (k+1)*m). Cleared (capacity kept) on refactorize.
  std::vector<double> eta_pool_;
  std::vector<int> eta_rows_;
  bool valid_ = false;
  double pivot_growth_ = 1.0;
  // Per-solve scratch, capacity-reused across calls. Mutable because
  // ftran/btran are logically const; this is what makes const calls
  // non-reentrant (see class comment).
  mutable std::vector<double> z_;        // permuted / triangular-solve image
  mutable std::vector<double> resid_v_;  // residual_* intermediate product
  mutable std::vector<double> refine_rhs_, refine_r_, refine_d_,
      refine_cand_, refine_r2_;
};

}  // namespace gridsec::lp
