// Linear / mixed-integer program model builder.
//
// A Problem owns variables (with bounds, objective coefficients, optional
// integrality) and linear constraints (sparse rows with a sense and rhs).
// It is solver-agnostic data; SimplexSolver and BranchAndBoundSolver consume
// it. Mirrors the role `linprog`/GLPK model structs played in the paper's
// MATLAB implementation.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "gridsec/lp/basis.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::lp {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLessEqual, kGreaterEqual, kEqual };
enum class Objective { kMinimize, kMaximize };
enum class VarType { kContinuous, kBinary, kInteger };

/// One term of a linear expression: coefficient * variable.
struct Term {
  int var = -1;
  double coef = 0.0;
};

/// Sparse linear expression, built by accumulation.
class LinearExpr {
 public:
  LinearExpr() = default;

  LinearExpr& add(int var, double coef) {
    if (coef != 0.0) terms_.push_back({var, coef});
    return *this;
  }

  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

 private:
  std::vector<Term> terms_;
};

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  VarType type = VarType::kContinuous;
};

struct Constraint {
  std::string name;
  std::vector<Term> terms;  // duplicate vars are summed at solve time
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

class Problem {
 public:
  explicit Problem(Objective objective = Objective::kMinimize)
      : objective_(objective) {}

  /// Adds a variable; returns its index. Lower bound must be finite
  /// (the solvers anchor nonbasic variables at a finite bound).
  int add_variable(std::string name, double lower, double upper,
                   double objective_coef,
                   VarType type = VarType::kContinuous);

  /// Shorthand for a [0,1] binary decision variable.
  int add_binary(std::string name, double objective_coef);

  /// Adds a constraint; returns its row index.
  int add_constraint(std::string name, LinearExpr expr, Sense sense,
                     double rhs);

  /// Re-points an existing variable's objective coefficient.
  void set_objective_coef(int var, double coef);
  /// Overwrites an existing variable's bounds.
  void set_bounds(int var, double lower, double upper);
  /// Overwrites an existing constraint's rhs.
  void set_rhs(int row, double rhs);
  /// Overwrites the coefficient of one existing term of an existing
  /// constraint. `term` indexes the row's term list in insertion order —
  /// model builders with a deterministic term layout (e.g. the
  /// social-welfare LP's [out-edges... | in-edges...] rows) refresh
  /// coefficients in place through this instead of rebuilding the model.
  /// The new coefficient must be nonzero: a zero would silently change the
  /// sparsity pattern relative to a fresh build.
  void set_constraint_coef(int row, int term, double coef);
  /// Multiplies every coefficient and the rhs of an existing constraint by
  /// `factor` (must be positive so the sense is preserved). The feasible
  /// set is unchanged; only the row's conditioning moves — this is what
  /// the numerical-stress fault kinds and equilibration tests exercise.
  void scale_constraint(int row, double factor);

  [[nodiscard]] Objective objective() const { return objective_; }
  [[nodiscard]] int num_variables() const {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const Variable& variable(int i) const {
    GRIDSEC_ASSERT(i >= 0 && i < num_variables());
    return variables_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const Constraint& constraint(int i) const {
    GRIDSEC_ASSERT(i >= 0 && i < num_constraints());
    return constraints_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<Variable>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] bool has_integer_variables() const;

  /// Evaluates the objective at a point (no feasibility check).
  [[nodiscard]] double objective_value(
      const std::vector<double>& x) const;

  /// Checks primal feasibility of x within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-6) const;

 private:
  Objective objective_;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

/// Solver verdicts shared by LP and MILP layers.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,       // wall-clock deadline hit; any returned point is feasible
  kNumericalError,  // NaN/Inf input data or a numerically wedged basis
};

std::string_view to_string(SolveStatus s);

/// Maps a solver verdict to the shared Status vocabulary (kOptimal -> ok).
/// `context` prefixes the message, e.g. "solve_milp".
Status to_status(SolveStatus s, std::string_view context);

/// True for verdicts that still carry a usable feasible point when x is
/// non-empty (budget exhaustion, not model pathology).
[[nodiscard]] constexpr bool is_budget_limited(SolveStatus s) {
  return s == SolveStatus::kIterationLimit || s == SolveStatus::kTimeLimit;
}

/// Largest finite magnitude validate_problem accepts for coefficients,
/// bounds and rhs values. Anything beyond it overflows to Inf in ordinary
/// pivot products (1e30 * 1e30 > DBL_MAX), so such data is rejected at the
/// gate as kInvalidArgument instead of surfacing mid-solve as a
/// kNumericalError.
constexpr double kMaxMagnitude = 1e30;

/// Input validation shared by every solver entry point: rejects NaN/Inf
/// objective coefficients, constraint coefficients and rhs, non-finite or
/// inconsistent bounds (NaN, lower > upper, infinite lower), out-of-range
/// constraint variable indices (all kNumericalError), and finite values
/// beyond kMaxMagnitude (kInvalidArgument) — via Status instead of
/// undefined behaviour inside the pivoting arithmetic. Note the solve
/// entry points collapse any validation failure to
/// SolveStatus::kNumericalError (there is no invalid-input solve status);
/// callers wanting the distinction run validate_problem themselves.
[[nodiscard]] Status validate_problem(const Problem& problem);

/// Branch-and-bound search counters. Lives here (not milp.hpp) so Solution
/// can carry a copy back to one-shot solve_milp() callers.
struct BranchAndBoundStats {
  long nodes_explored = 0;
  long lp_solves = 0;
  long incumbent_updates = 0;
};

/// One rung attempt from the numerical-recovery ladder
/// (robust::recovery). Carried as a plain string + status so the lp layer
/// stays ignorant of the robust layer's rung enum; audit bundles persist
/// the trail verbatim.
struct RecoveryStepInfo {
  std::string rung;  // "warm", "repaired_basis", "cold", "bland", ...
  SolveStatus status = SolveStatus::kNumericalError;
  // True on the (at most one) entry whose answer the ladder adopted: it
  // passed independent certification (robust::recovery prefers the strict
  // 1e-9 tier, falling back to default tolerances when no rung clears it).
  bool certified = false;
};

/// A primal (and for LP, dual) solution.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;          // in the problem's own sense
  std::vector<double> x;           // primal values, per variable
  std::vector<double> duals;       // per constraint (LP only; empty for MILP)
  std::vector<double> reduced_costs;  // per variable (LP only)
  long iterations = 0;             // simplex pivots (LP; 0 for MILP solves)
  /// Filled by BranchAndBoundSolver; all-zero for plain LP solves.
  BranchAndBoundStats bnb;
  /// The optimal basis (LP: final simplex basis; MILP: the incumbent
  /// node's relaxation basis). Feed it back through
  /// SimplexOptions::warm_start to hot-start a sibling solve. Empty when
  /// the solve did not reach optimality or went through presolve.
  Basis basis;
  /// True when this solve started from a warm basis (after any crash
  /// repair) rather than the cold slack/artificial basis. Audit bundles
  /// record this provenance bit.
  bool warm_started = false;
  /// Non-empty iff the numerical-recovery ladder engaged on this solve:
  /// one entry per rung attempted (including the original failed
  /// attempts), in order. The last entry with certified=true produced the
  /// values in this Solution. Flows into audit bundles and the JSONL log
  /// (docs/robustness.md#numerical-recovery).
  std::vector<RecoveryStepInfo> recovery_trail;

  [[nodiscard]] bool optimal() const {
    return status == SolveStatus::kOptimal;
  }
};

/// Post-solve observation hook. The lp layer cannot depend on the audit
/// library (audit links lp), so certification is inverted: audit registers
/// a hook here and every solver entry point reports through it.
///
/// `context` names the solve site ("lp.simplex" for direct LP solves,
/// "lp.bnb" for a finished branch-and-bound solve, "lp.bnb.node" for the
/// relaxation solved at one search node). The problem/solution references
/// are valid only for the duration of the call.
using SolveHook = void (*)(const Problem& problem, const Solution& solution,
                           std::string_view context);

/// Atomically installs `hook` (nullptr uninstalls); returns the previous
/// hook so scoped users can restore it. The hook may be invoked
/// concurrently from many threads and must be internally synchronized.
SolveHook set_solve_hook(SolveHook hook);

/// The currently installed hook (nullptr when none, or when suppressed on
/// the calling thread — see ScopedSolveHookSuppress). Solvers call this
/// once per solve; one relaxed atomic load when no hook is installed.
[[nodiscard]] SolveHook solve_hook();

/// RAII: suppresses the solve hook on the CURRENT THREAD for its lifetime.
/// For harnesses that deliberately drive the solver into numerical
/// trouble — the recovery ladder's diagnostic rung attempts and the
/// stress-numerics fuzzer's probe solves. Reporting those engineered
/// failures to an armed audit hook would count them as product defects;
/// the real (outer) solve still reports normally. Nests safely.
class ScopedSolveHookSuppress {
 public:
  ScopedSolveHookSuppress();
  ~ScopedSolveHookSuppress();
  ScopedSolveHookSuppress(const ScopedSolveHookSuppress&) = delete;
  ScopedSolveHookSuppress& operator=(const ScopedSolveHookSuppress&) = delete;
};

/// Current nesting depth of ScopedSolveHookSuppress on the calling thread
/// (0 = not suppressed). Exposed so tests can assert scopes balance.
[[nodiscard]] int solve_hook_suppression_depth();

struct SimplexOptions;  // simplex.hpp; the hook only needs a reference

/// Numerical-recovery hook — the same dependency inversion as SolveHook:
/// robust::recovery registers here, and SimplexSolver invokes the hook
/// when a solve still ends in kNumericalError after its built-in
/// warm→cold retry. The hook may run its escalation ladder (re-entrant
/// solves must be guarded by the hook itself), overwrite *solution with a
/// certified answer, and return true; returning false leaves the failed
/// solution in place (the hook may still have attached a recovery_trail
/// documenting the failed attempts). See robust/recovery.hpp.
using RecoveryHook = bool (*)(const Problem& problem,
                              const SimplexOptions& options,
                              Solution* solution);

/// Atomically installs `hook` (nullptr uninstalls); returns the previous
/// hook. May be invoked concurrently from many threads.
RecoveryHook set_recovery_hook(RecoveryHook hook);

/// The currently installed recovery hook (nullptr when none).
[[nodiscard]] RecoveryHook recovery_hook();

}  // namespace gridsec::lp
