// Linear / mixed-integer program model builder.
//
// A Problem owns variables (with bounds, objective coefficients, optional
// integrality) and linear constraints (sparse rows with a sense and rhs).
// It is solver-agnostic data; SimplexSolver and BranchAndBoundSolver consume
// it. Mirrors the role `linprog`/GLPK model structs played in the paper's
// MATLAB implementation.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "gridsec/lp/basis.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::lp {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLessEqual, kGreaterEqual, kEqual };
enum class Objective { kMinimize, kMaximize };
enum class VarType { kContinuous, kBinary, kInteger };

/// One term of a linear expression: coefficient * variable.
struct Term {
  int var = -1;
  double coef = 0.0;
};

/// Sparse linear expression, built by accumulation.
class LinearExpr {
 public:
  LinearExpr() = default;

  LinearExpr& add(int var, double coef) {
    if (coef != 0.0) terms_.push_back({var, coef});
    return *this;
  }

  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

 private:
  std::vector<Term> terms_;
};

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  VarType type = VarType::kContinuous;
};

struct Constraint {
  std::string name;
  std::vector<Term> terms;  // duplicate vars are summed at solve time
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

class Problem {
 public:
  explicit Problem(Objective objective = Objective::kMinimize)
      : objective_(objective) {}

  /// Adds a variable; returns its index. Lower bound must be finite
  /// (the solvers anchor nonbasic variables at a finite bound).
  int add_variable(std::string name, double lower, double upper,
                   double objective_coef,
                   VarType type = VarType::kContinuous);

  /// Shorthand for a [0,1] binary decision variable.
  int add_binary(std::string name, double objective_coef);

  /// Adds a constraint; returns its row index.
  int add_constraint(std::string name, LinearExpr expr, Sense sense,
                     double rhs);

  /// Re-points an existing variable's objective coefficient.
  void set_objective_coef(int var, double coef);
  /// Overwrites an existing variable's bounds.
  void set_bounds(int var, double lower, double upper);
  /// Overwrites an existing constraint's rhs.
  void set_rhs(int row, double rhs);

  [[nodiscard]] Objective objective() const { return objective_; }
  [[nodiscard]] int num_variables() const {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const Variable& variable(int i) const {
    GRIDSEC_ASSERT(i >= 0 && i < num_variables());
    return variables_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const Constraint& constraint(int i) const {
    GRIDSEC_ASSERT(i >= 0 && i < num_constraints());
    return constraints_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<Variable>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] bool has_integer_variables() const;

  /// Evaluates the objective at a point (no feasibility check).
  [[nodiscard]] double objective_value(
      const std::vector<double>& x) const;

  /// Checks primal feasibility of x within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-6) const;

 private:
  Objective objective_;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

/// Solver verdicts shared by LP and MILP layers.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,       // wall-clock deadline hit; any returned point is feasible
  kNumericalError,  // NaN/Inf input data or a numerically wedged basis
};

std::string_view to_string(SolveStatus s);

/// Maps a solver verdict to the shared Status vocabulary (kOptimal -> ok).
/// `context` prefixes the message, e.g. "solve_milp".
Status to_status(SolveStatus s, std::string_view context);

/// True for verdicts that still carry a usable feasible point when x is
/// non-empty (budget exhaustion, not model pathology).
[[nodiscard]] constexpr bool is_budget_limited(SolveStatus s) {
  return s == SolveStatus::kIterationLimit || s == SolveStatus::kTimeLimit;
}

/// Input validation shared by every solver entry point: rejects NaN/Inf
/// objective coefficients, constraint coefficients and rhs, non-finite or
/// inconsistent bounds (NaN, lower > upper, infinite lower), and
/// out-of-range constraint variable indices — via Status instead of
/// undefined behaviour inside the pivoting arithmetic.
[[nodiscard]] Status validate_problem(const Problem& problem);

/// Branch-and-bound search counters. Lives here (not milp.hpp) so Solution
/// can carry a copy back to one-shot solve_milp() callers.
struct BranchAndBoundStats {
  long nodes_explored = 0;
  long lp_solves = 0;
  long incumbent_updates = 0;
};

/// A primal (and for LP, dual) solution.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;          // in the problem's own sense
  std::vector<double> x;           // primal values, per variable
  std::vector<double> duals;       // per constraint (LP only; empty for MILP)
  std::vector<double> reduced_costs;  // per variable (LP only)
  long iterations = 0;             // simplex pivots (LP; 0 for MILP solves)
  /// Filled by BranchAndBoundSolver; all-zero for plain LP solves.
  BranchAndBoundStats bnb;
  /// The optimal basis (LP: final simplex basis; MILP: the incumbent
  /// node's relaxation basis). Feed it back through
  /// SimplexOptions::warm_start to hot-start a sibling solve. Empty when
  /// the solve did not reach optimality or went through presolve.
  Basis basis;
  /// True when this solve started from a warm basis (after any crash
  /// repair) rather than the cold slack/artificial basis. Audit bundles
  /// record this provenance bit.
  bool warm_started = false;

  [[nodiscard]] bool optimal() const {
    return status == SolveStatus::kOptimal;
  }
};

/// Post-solve observation hook. The lp layer cannot depend on the audit
/// library (audit links lp), so certification is inverted: audit registers
/// a hook here and every solver entry point reports through it.
///
/// `context` names the solve site ("lp.simplex" for direct LP solves,
/// "lp.bnb" for a finished branch-and-bound solve, "lp.bnb.node" for the
/// relaxation solved at one search node). The problem/solution references
/// are valid only for the duration of the call.
using SolveHook = void (*)(const Problem& problem, const Solution& solution,
                           std::string_view context);

/// Atomically installs `hook` (nullptr uninstalls); returns the previous
/// hook so scoped users can restore it. The hook may be invoked
/// concurrently from many threads and must be internally synchronized.
SolveHook set_solve_hook(SolveHook hook);

/// The currently installed hook (nullptr when none). Solvers call this
/// once per solve; one relaxed atomic load when no hook is installed.
[[nodiscard]] SolveHook solve_hook();

}  // namespace gridsec::lp
