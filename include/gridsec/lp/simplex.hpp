// Two-phase primal simplex for LPs with bounded variables.
//
// Scope: the dense LPs produced by gridsec's 12-hub energy graphs (tens of
// rows and columns). The basis matrix is LU-factorized once and kept
// current across pivots with product-form eta updates (BasisFactorization;
// periodic refactorization on an update-count or pivot-accuracy trigger),
// Bland's rule kicks in after a pivot budget to guarantee termination, and
// variables may be nonbasic at either bound (capacities live in the bounds,
// not in rows). Solves can warm-start from a previous Solution::basis —
// stale or incompatible bases are crash-repaired, never fatal (see
// docs/solvers.md, "Warm starts & basis factorization").
//
// Duals: Solution::duals[i] is the shadow price of constraint i — the rate
// of change of the optimal objective (in the problem's own sense) per unit
// increase of the rhs, valid while the optimal basis persists. These are the
// locational marginal prices when applied to the social-welfare LP.
#pragma once

#include "gridsec/lp/problem.hpp"
#include "gridsec/obs/solver_events.hpp"

namespace gridsec::lp {

class SolverWorkspace;

struct SimplexOptions {
  double feasibility_tol = 1e-7;   // bound/constraint violation tolerance
  double optimality_tol = 1e-9;    // reduced-cost threshold
  long max_iterations = 0;         // 0 = automatic (scales with size)
  /// Pivot count after which pricing switches to Bland's rule.
  /// 0 = automatic (20·(m+n), min 200); negative = Bland from the first
  /// pivot (the recovery ladder's deterministic-termination rung).
  long bland_after = 0;
  /// Wall-clock deadline in milliseconds, checked once per pivot (a pivot
  /// refactorizes the basis, so the clock read is noise). 0 = no limit.
  /// Expiry returns SolveStatus::kTimeLimit.
  double time_limit_ms = 0.0;
  /// Consecutive degenerate pivots tolerated before the pricing rule is
  /// forced to Bland's rule for the rest of the solve (cycling detection;
  /// Bland guarantees termination). 0 = automatic (scales with size).
  long cycle_streak_limit = 0;
  /// Optional event stream: called once per completed pivot (including
  /// bound flips). Empty (the default) costs one branch per iteration.
  obs::SimplexObserver observer;
  /// Warm-start basis, typically a previous Solution::basis from a
  /// structurally similar model. Empty (the default) = cold start. The
  /// row count must match the problem's; the variable statuses may cover
  /// a prefix of the columns (extra variables start at their lower
  /// bound). An infeasible, stale, or rank-deficient basis is
  /// crash-repaired (counter lp.simplex.basis_repairs) and any remaining
  /// infeasibility is removed by the ordinary phase-1; the answer is
  /// always certificate-identical to a cold solve. Ignored when
  /// set_warm_start_enabled(false) is in effect.
  Basis warm_start;
  /// Workspace carrying all per-solve solver state (see workspace.hpp).
  /// nullptr (the default) uses the calling thread's workspace — the right
  /// choice for every ordinary solve. Set it only when the solver state
  /// must outlive the solve or live somewhere specific.
  SolverWorkspace* workspace = nullptr;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the continuous relaxation of `problem` (integrality markers are
  /// ignored). Never throws for solver outcomes; the status field reports
  /// infeasible/unbounded/iteration-limit/time-limit/numerical-error.
  /// NaN/Inf coefficients, inconsistent bounds, and finite magnitudes past
  /// lp::kMaxMagnitude are rejected up front (see validate_problem) instead
  /// of corrupting pivots. When a solve on valid input still ends in
  /// kNumericalError and robust::install_recovery() is in effect, the
  /// recovery ladder runs before the verdict is returned — a recovered
  /// Solution carries the rung-by-rung trail in recovery_trail.
  [[nodiscard]] Solution solve(const Problem& problem) const;

 private:
  SimplexOptions options_;
};

/// Convenience wrapper: one-shot solve with default options.
Solution solve_lp(const Problem& problem);

/// One-shot solve with explicit options. Equivalent to
/// SimplexSolver(options).solve(problem) minus the options/basis copy —
/// the form hot loops (B&B nodes, recovery rungs, model re-solves) use.
Solution solve_lp(const Problem& problem, const SimplexOptions& options);

/// A closed interval; ±infinity for unbounded sides.
struct SensitivityRange {
  double lo = -kInfinity;
  double hi = kInfinity;
};

/// Post-optimal sensitivity (ranging) information.
struct SensitivityReport {
  Solution solution;
  /// Per variable: the interval its objective coefficient may move through
  /// (other data fixed) while the current optimal basis stays optimal —
  /// within it, the optimal point is unchanged. In the problem's own sense.
  std::vector<SensitivityRange> objective_range;
  /// Per constraint: the interval its rhs may move through while the
  /// current basis stays feasible — within it, the objective changes
  /// linearly at the rate Solution::duals[i].
  std::vector<SensitivityRange> rhs_range;
};

/// Solves `problem` and computes classic simplex ranging from the final
/// basis. When the solve is not optimal, the ranges are empty and
/// report.solution carries the failure status. Degenerate optima yield
/// conservative (possibly single-point) ranges.
SensitivityReport analyze_sensitivity(const Problem& problem,
                                      const SimplexOptions& options = {});

}  // namespace gridsec::lp
