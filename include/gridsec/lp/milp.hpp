// Branch-and-bound MILP solver on top of SimplexSolver.
//
// Handles the paper's two mixed-integer programs — strategic-adversary
// target/actor selection (Eqs 8–11, after McCormick linearization of the
// T(i)·A(j) products) and the defender knapsack (Eqs 12–14 / 16–18). Both
// use binary decisions only, but general integer variables are supported.
//
// Node selection is best-first on the relaxation bound; branching picks the
// most fractional integer variable. Exact for the problem sizes here
// (≤ ~200 binaries with tight budgets).
#pragma once

#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/obs/solver_events.hpp"

namespace gridsec::lp {

struct BranchAndBoundOptions {
  SimplexOptions lp_options;
  double integrality_tol = 1e-6;
  /// Absolute optimality gap at which search stops.
  double absolute_gap = 1e-9;
  long max_nodes = 200000;
  /// Wall-clock deadline in milliseconds, checked once per node (and in the
  /// diving heuristic). 0 = no limit. Expiry returns the incumbent (if any)
  /// with SolveStatus::kTimeLimit — feasible but not proven optimal.
  double time_limit_ms = 0.0;
  /// Run LP presolve at the root (bound tightening propagates into every
  /// node because nodes only shrink bounds further).
  bool use_presolve = false;
  /// Before the search, dive once from the root relaxation — repeatedly
  /// round the most fractional integer and re-solve — to seed an incumbent
  /// early. Never affects optimality, only pruning speed.
  bool diving_heuristic = true;
  /// Optional event stream: called for every node explored / pruned /
  /// incumbent found. Empty (the default) costs one branch per node.
  obs::BnBObserver observer;
};

// BranchAndBoundStats lives in problem.hpp so Solution can embed it; the
// same counters are also available here via BranchAndBoundSolver::stats().

class BranchAndBoundSolver {
 public:
  explicit BranchAndBoundSolver(BranchAndBoundOptions options = {})
      : options_(options) {}

  /// Solves `problem` to proven optimality (within absolute_gap).
  /// Solution::duals is empty (MILP duals are not well defined).
  /// status == kIterationLimit / kTimeLimit means the node or wall-clock
  /// budget was exhausted; the returned incumbent (if any) is feasible but
  /// possibly suboptimal. kNumericalError means the data is NaN/Inf-poisoned
  /// or every relaxation wedged numerically; no incumbent is returned then.
  /// Solution::bnb carries the search counters (same values as stats()).
  [[nodiscard]] Solution solve(const Problem& problem) const;

  [[nodiscard]] const BranchAndBoundStats& stats() const { return stats_; }

 private:
  [[nodiscard]] Solution solve_search(const Problem& problem) const;

  BranchAndBoundOptions options_;
  mutable BranchAndBoundStats stats_;
};

/// One-shot MILP solve with default options.
Solution solve_milp(const Problem& problem);

/// MILP solve followed by an LP re-solve with every integer variable fixed
/// at its incumbent value — the standard way to recover meaningful duals
/// and reduced costs for the continuous part of a mixed program. Only
/// valid interpretation: sensitivities *given* the chosen integer design.
Solution solve_milp_with_duals(const Problem& problem,
                               const BranchAndBoundOptions& options = {});

}  // namespace gridsec::lp
