// Actor ownership of network assets (§II-B, §III-A3).
//
// Every edge of the network is an asset owned by exactly one actor. The
// paper's experiments draw ownership uniformly: with N actors each asset
// lands on any particular actor with probability 1/N.
#pragma once

#include <span>
#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/util/error.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::cps {

class Ownership {
 public:
  /// owners[e] = actor owning edge e, each in [0, num_actors).
  Ownership(std::vector<int> owners, int num_actors);

  /// Uniform random assignment: each edge independently picks one of the
  /// `num_actors` actors (the paper's 1/N model).
  static Ownership random(int num_edges, int num_actors, Rng& rng);

  /// All edges owned by one actor (the monolithic baseline).
  static Ownership monolithic(int num_edges);

  [[nodiscard]] int owner(flow::EdgeId e) const {
    GRIDSEC_ASSERT(e >= 0 && e < static_cast<int>(owners_.size()));
    return owners_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] int num_actors() const { return num_actors_; }
  [[nodiscard]] int num_assets() const {
    return static_cast<int>(owners_.size());
  }
  [[nodiscard]] std::span<const int> owners() const { return owners_; }

  /// The asset set T_a of one actor.
  [[nodiscard]] std::vector<flow::EdgeId> assets_of(int actor) const;

  /// Number of distinct actors that actually own at least one asset.
  [[nodiscard]] int active_actors() const;

 private:
  std::vector<int> owners_;
  int num_actors_;
};

}  // namespace gridsec::cps
