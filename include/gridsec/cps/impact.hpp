// The impact matrix IM[a,t] (§II-D3): the profit change of actor a when
// target t is attacked, measured at the social-welfare optimum with
// competitive (marginal-cost) profit division.
//
// Impact = Utility' − Utility per actor; the system-wide welfare change is
// tracked alongside. One LP-and-allocation solve per target — the costly
// kernel of the whole pipeline (everything downstream consumes IM).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "gridsec/cps/ownership.hpp"
#include "gridsec/cps/perturbation.hpp"
#include "gridsec/flow/allocation.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::cps {

class ImpactMatrix {
 public:
  ImpactMatrix(int num_actors, int num_targets);

  [[nodiscard]] int num_actors() const { return num_actors_; }
  [[nodiscard]] int num_targets() const { return num_targets_; }

  [[nodiscard]] double at(int actor, int target) const {
    GRIDSEC_ASSERT(actor >= 0 && actor < num_actors_);
    GRIDSEC_ASSERT(target >= 0 && target < num_targets_);
    return values_[static_cast<std::size_t>(actor) *
                       static_cast<std::size_t>(num_targets_) +
                   static_cast<std::size_t>(target)];
  }
  void set(int actor, int target, double value) {
    GRIDSEC_ASSERT(actor >= 0 && actor < num_actors_);
    GRIDSEC_ASSERT(target >= 0 && target < num_targets_);
    values_[static_cast<std::size_t>(actor) *
                static_cast<std::size_t>(num_targets_) +
            static_cast<std::size_t>(target)] = value;
  }

  /// Social-welfare change when target t is attacked (always <= ~0:
  /// an attack cannot improve an already-optimal system).
  [[nodiscard]] double system_impact(int target) const {
    GRIDSEC_ASSERT(target >= 0 && target < num_targets_);
    return system_impact_[static_cast<std::size_t>(target)];
  }
  void set_system_impact(int target, double value) {
    GRIDSEC_ASSERT(target >= 0 && target < num_targets_);
    system_impact_[static_cast<std::size_t>(target)] = value;
  }

  /// Σ_a max(IM[a,t], 0): how much some actors *gain* from attacking t.
  [[nodiscard]] double total_gain(int target) const;
  /// Σ_a min(IM[a,t], 0): the combined losses (non-positive).
  [[nodiscard]] double total_loss(int target) const;

  /// Gain/loss summed over every target (Experiment 1's quantities).
  [[nodiscard]] double aggregate_gain() const;
  [[nodiscard]] double aggregate_loss() const;

 private:
  int num_actors_;
  int num_targets_;
  std::vector<double> values_;
  std::vector<double> system_impact_;
};

struct ImpactOptions {
  /// How each target is perturbed when measuring its impact. The paper's
  /// experiments zero the capacity (an outage).
  AttackType attack_type = AttackType::kOutage;
  double attack_magnitude = 1.0;
  flow::AllocationOptions allocation;
  /// Capacity attacks on an edge carrying zero flow at the base optimum
  /// cannot change the optimum (removing unused capacity leaves the basis
  /// optimal), so their impact column is identically zero; skip their LP
  /// solves. Exact — disable only to measure its effect (see
  /// micro_ablation).
  bool skip_unused_targets = true;
  /// Warm-start seed for the base-model solve, typically
  /// ImpactResult::base_basis from a previous matrix over the same
  /// topology (e.g. the preceding sigma step of a noise sweep). The
  /// per-target attacked solves always warm-start from this run's own
  /// base basis regardless.
  lp::Basis warm_start;
};

/// Computes IM over all edges as targets. Fails (kInfeasible in the status)
/// only if the base model cannot be solved; a target whose attacked model
/// fails to solve is reported as zero impact with the failure counted in
/// `failed_targets` (defensive — cannot happen for capacity perturbations
/// of a feasible model).
struct ImpactResult {
  ImpactMatrix matrix;
  std::vector<double> base_actor_profit;
  double base_welfare = 0.0;
  int failed_targets = 0;
  /// Basis of the base (unattacked) welfare solve; feed it back through
  /// ImpactOptions::warm_start when computing a sibling matrix.
  lp::Basis base_basis;
};

StatusOr<ImpactResult> compute_impact_matrix(
    const flow::Network& net, const Ownership& ownership,
    const ImpactOptions& options = {});

/// Writes the matrix as CSV (header: target, system, actor0..actorN;
/// one row per target) for external analysis/plotting. Target names come
/// from `net` (which must match the matrix's target count).
void write_impact_csv(std::ostream& os, const ImpactMatrix& im,
                      const flow::Network& net);

}  // namespace gridsec::cps
