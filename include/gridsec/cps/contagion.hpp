// Contagion-style interdependence baseline.
//
// The interdependent-security literature the paper positions against
// ([24-27]) models risk spreading as contagion on the asset graph: a
// compromised component degrades its neighbours with some probability,
// regardless of the underlying physics. The paper's thesis is that for
// energy CPS the impacts "should be measured on the physical side ...
// rather than approximated via contagion."
//
// This module implements the baseline so the thesis can be tested: an
// independent-cascade expectation where an attack on asset t fails each
// other asset e with probability p^d(t,e) (d = hop distance in the asset
// adjacency graph, assets adjacent when they share a hub), and the
// predicted damage is the failure-probability-weighted sum of asset sizes.
// bench/ext_contagion correlates this prediction against the true economic
// impact.
#pragma once

#include <vector>

#include "gridsec/flow/network.hpp"

namespace gridsec::cps {

struct ContagionModel {
  /// Per-hop transmission probability of the cascade.
  double transmission_prob = 0.5;
  /// Contributions below this probability are truncated.
  double threshold = 1e-4;
};

/// Hop distances between assets in the shared-hub adjacency graph;
/// row-major [source * num_edges + target], -1 when unreachable.
std::vector<int> asset_hop_distances(const flow::Network& net);

/// Expected contagion damage of attacking each asset: Σ_e p^d(t,e)·size(e),
/// with size(e) = capacity (the contagion literature's component-size
/// proxy). The attacked asset itself counts with probability 1.
std::vector<double> contagion_expected_damage(const flow::Network& net,
                                              const ContagionModel& model);

}  // namespace gridsec::cps
