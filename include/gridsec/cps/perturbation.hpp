// Model perturbations (§II-D3, §II-D4): cyber-attacks on assets and
// knowledge noise.
//
// Attacks change the graph parameters directly — the adversary compromises
// the control system driving an asset and degrades its physical service.
// The paper's experiments use the outage attack (capacity -> 0, "crash a
// PLC"); subtler attacks (loss increase, cost shift, partial capacity) are
// also supported.
//
// Knowledge noise models an observer (attacker or defender) whose picture
// of the system comes from public sources or reconnaissance: each edge
// parameter is redrawn from a normal distribution around its true value.
#pragma once

#include <span>

#include "gridsec/flow/network.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::cps {

enum class AttackType {
  kOutage,         // capacity -> 0 (the paper's experimental perturbation)
  kCapacityScale,  // capacity *= (1 - magnitude)
  kLossIncrease,   // loss += magnitude (clamped below 1)
  kCostShift,      // cost += magnitude
};

struct Attack {
  flow::EdgeId target = -1;
  AttackType type = AttackType::kOutage;
  /// Severity; unused for kOutage. For kCapacityScale this is the fraction
  /// of capacity destroyed in [0, 1].
  double magnitude = 1.0;
};

/// Applies one attack in place.
void apply_attack(flow::Network& net, const Attack& attack);

/// Returns a copy of `net` with all attacks applied.
flow::Network attacked_network(const flow::Network& net,
                               std::span<const Attack> attacks);

enum class NoiseMode {
  /// x' = N(x, (sigma·x)^2): sigma is a relative knowledge error. Default —
  /// it keeps one sigma meaningful across capacity/cost/loss scales.
  kRelative,
  /// x' = N(x, sigma^2): the paper's literal formulation.
  kAbsolute,
};

struct NoiseSpec {
  double sigma = 0.0;
  NoiseMode mode = NoiseMode::kRelative;
  bool perturb_capacity = true;
  bool perturb_cost = true;
  bool perturb_loss = true;
};

/// Returns the observer's noisy view of the network: every selected edge
/// parameter redrawn around its true value (capacities clamped >= 0,
/// losses clamped to [0, 0.95]). sigma == 0 returns an exact copy.
flow::Network perturb_knowledge(const flow::Network& net,
                                const NoiseSpec& spec, Rng& rng);

}  // namespace gridsec::cps
