// Layered security postures (§II-E4, §II-F4).
//
// The paper motivates Ps(t) and Catk(t) as handles for defense-in-depth:
// "adding layers of security reduces the probability of successful attack
// and increases the cost of an attack." This module makes that concrete:
// each target carries an integer number of security layers; every layer
// multiplies the success probability by a decay factor and adds to the
// attack cost. Derived AdversaryConfig parameters feed straight into the
// StrategicAdversary, and a layered defender invests budget in *layers*
// (integer MILP) rather than the binary defend/not of Eqs 12-14 —
// augmenting the traditional dependability model exactly as §II-F4
// describes.
#pragma once

#include <vector>

#include "gridsec/cps/impact.hpp"
#include "gridsec/cps/ownership.hpp"

namespace gridsec::cps {

struct SecurityModel {
  /// Ps with zero layers.
  double base_success_prob = 1.0;
  /// Multiplicative Ps decay per layer (e.g. 0.5: each layer halves Ps).
  double success_decay_per_layer = 0.5;
  /// Catk with zero layers.
  double base_attack_cost = 0.0;
  /// Additional attack cost per layer (reconnaissance, exploit re-design).
  double attack_cost_per_layer = 1.0;
};

class SecurityPosture {
 public:
  SecurityPosture(int num_targets, SecurityModel model);

  [[nodiscard]] int num_targets() const {
    return static_cast<int>(layers_.size());
  }
  [[nodiscard]] int layers(int target) const;
  void set_layers(int target, int layers);
  void add_layer(int target) { set_layers(target, layers(target) + 1); }

  [[nodiscard]] const SecurityModel& model() const { return model_; }

  /// Ps(t) = base · decay^layers(t).
  [[nodiscard]] double success_prob(int target) const;
  /// Catk(t) = base + per_layer · layers(t).
  [[nodiscard]] double attack_cost(int target) const;

  /// Materializes the per-target vectors for an AdversaryConfig.
  [[nodiscard]] std::vector<double> success_prob_vector() const;
  [[nodiscard]] std::vector<double> attack_cost_vector() const;

 private:
  std::vector<int> layers_;
  SecurityModel model_;
};

struct LayeredDefenseConfig {
  /// Cost the *defender* pays per layer added to a target.
  double layer_cost = 1.0;
  /// Max layers a defender may stack on one target.
  int max_layers_per_target = 3;
  /// Per-actor investment budgets.
  std::vector<double> budget;
};

struct LayeredDefensePlan {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  std::vector<int> added_layers;  // per target
  double objective = 0.0;
  std::vector<double> spending;   // per actor

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
  [[nodiscard]] int total_layers() const;
};

/// Each actor invests in layers on its own assets to minimize expected
/// attack losses: adding k layers to target t changes its expected loss
/// from Pa(t)·Ps(t)·I(a,t) to Pa(t)·Ps_k(t)·I(a,t) with
/// Ps_k = Ps·decay^k. The per-actor integer program maximizes
/// Σ_t (avoided expected loss − layer spending) under the budget.
LayeredDefensePlan defend_layered(const ImpactMatrix& im,
                                  const Ownership& ownership,
                                  const std::vector<double>& pa,
                                  const SecurityPosture& posture,
                                  const LayeredDefenseConfig& config);

}  // namespace gridsec::cps
