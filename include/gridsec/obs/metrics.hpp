// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms
// and RunningStats-backed timers, with JSON/CSV export.
//
// Design goals, in order:
//   1. Near-zero cost on hot paths. Counters and gauges are single relaxed
//      atomics; solver loops accumulate into plain locals and flush once
//      per solve. Instrument sites cache the `Counter&` returned by the
//      registry in a function-local static, so the name lookup (mutex +
//      map) happens once per process, not per call.
//   2. Stable addresses. Instruments are arena-allocated inside the
//      registry and never move or die before the registry does; the global
//      default_registry() never dies, so cached references stay valid for
//      the life of the process. reset() zeroes values without invalidating
//      references.
//   3. Exact under concurrency. Counter::add is atomic; hammering one
//      counter from every ThreadPool worker loses no increments (tested).
//
// Naming scheme: dot-separated `<layer>.<component>.<what>`, lowercase,
// e.g. "lp.simplex.pivots", "core.bnb.nodes", "util.threadpool.queue_depth".
// See docs/observability.md for the full catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridsec/util/stats.hpp"

namespace gridsec::obs {

/// Monotonic event count. add() is wait-free (relaxed atomic).
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, utilization, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations x with
/// x <= bounds[i] (first matching bucket); one implicit overflow bucket
/// collects x > bounds.back(). Bounds are fixed at construction.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::int64_t> counts() const;
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  /// Bucket-interpolated quantile estimate, q in [0, 1]. Assumes a uniform
  /// distribution within each bucket with the first bucket anchored at
  /// min(0, bounds[0]); observations in the overflow bucket clamp to
  /// bounds.back(). Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;                       // ascending
  std::vector<std::atomic<std::int64_t>> buckets_;   // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Duration accumulator backed by RunningStats (mean/stddev/min/max over
/// observed seconds). Mutex-protected: use per-solve or coarser, never
/// per-iteration. Keeps a bounded reservoir of samples (deterministic LCG
/// replacement once full) so tail quantiles stay available at export time.
class Timer {
 public:
  void observe_seconds(double s);
  [[nodiscard]] RunningStats snapshot() const;
  /// Reservoir-estimated quantile of observed seconds, q in [0, 1].
  /// Exact until the reservoir (kReservoirCapacity samples) overflows;
  /// an unbiased estimate after. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  void reset();

  static constexpr std::size_t kReservoirCapacity = 2048;

 private:
  mutable std::mutex mutex_;
  RunningStats stats_;
  std::vector<double> samples_;  // reservoir, <= kReservoirCapacity
  std::uint64_t lcg_ = 0x9e3779b97f4a7c15ULL;
};

/// RAII: times a scope into a Timer. A null timer records nothing.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::uint64_t start_ns_;
};

/// Point-in-time summary of one histogram or timer: observation count,
/// sum, and the p50/p90/p99 estimates the instrument already exposes.
/// Timers report seconds (sum = total observed seconds).
struct DistSnapshot {
  std::int64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Named instrument store. Lookup is mutex + map (slow path); call sites
/// cache the returned reference. Instruments live as long as the registry.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Find-or-create by name. The reference stays valid for the registry's
  /// lifetime. histogram() with a name that already exists returns the
  /// existing instrument (the bounds argument is ignored then).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  Timer& timer(const std::string& name);

  /// Zeroes every instrument's value. References remain valid.
  void reset();

  /// Point-in-time snapshot of every counter's value, keyed by name. Used
  /// by the bench harness to compute per-case metric deltas.
  [[nodiscard]] std::map<std::string, std::int64_t> counter_values() const;

  /// Point-in-time snapshot of every gauge's value, keyed by name.
  [[nodiscard]] std::map<std::string, double> gauge_values() const;

  /// Count/sum/quantile summaries of every histogram (resp. timer), keyed
  /// by name. Quantiles are the same estimates write_json() exports.
  [[nodiscard]] std::map<std::string, DistSnapshot> histogram_snapshots()
      const;
  [[nodiscard]] std::map<std::string, DistSnapshot> timer_snapshots() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
  /// "timers":{...}}. Names sorted; stable across runs.
  void write_json(std::ostream& os) const;
  /// Flat CSV: kind,name,field,value — one line per scalar.
  void write_csv(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// The process-global registry every built-in instrumentation site writes
/// to. Never destroyed (leaked on purpose so worker threads may touch it
/// during static teardown).
MetricRegistry& default_registry();

}  // namespace gridsec::obs
