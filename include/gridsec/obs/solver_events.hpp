// Solver event streams: optional observer callbacks the LP/MILP solvers
// invoke with per-iteration / per-node progress, so callers can watch
// pivot behaviour and bound/incumbent/gap trajectories live instead of
// reading aggregate stats after the fact.
//
// Observers are plain std::functions on SimplexOptions /
// BranchAndBoundOptions. A default-constructed (empty) observer costs one
// branch per iteration; event structs are only materialized when an
// observer is attached. Observers must not retain references into the
// solver and must be fast — they run inside the solve loop.
#pragma once

#include <functional>

namespace gridsec::obs {

/// One completed primal simplex pivot (including bound flips).
struct SimplexIterationEvent {
  long iteration = 0;   // 0-based, cumulative across phase 1 and phase 2
  int phase = 2;        // 1 = feasibility phase, 2 = optimality phase
  int entering = -1;    // internal column index entering the basis
  int leaving = -1;     // internal column leaving; -1 for a bound flip
  double step = 0.0;    // primal step length taken by the entering column
  bool bound_flip = false;   // pivot was a bound traversal, no basis change
  bool degenerate = false;   // step length ~0: a degenerate pivot
  bool bland = false;        // Bland's anti-cycling rule was active
};

using SimplexObserver = std::function<void(const SimplexIterationEvent&)>;

/// One branch-and-bound search step.
struct BnBNodeEvent {
  enum class Kind {
    kNodeExplored,    // node popped and its LP relaxation solved
    kPrunedByBound,   // node discarded: bound cannot beat the incumbent
    kInfeasible,      // node LP relaxation infeasible
    kIncumbent,       // new best integral solution found
    kBranched,        // node split on `branch_var`
  };
  Kind kind = Kind::kNodeExplored;
  long node = 0;            // nodes explored so far (dive reports 0)
  int depth = 0;            // number of branching bound-changes at the node
  double bound = 0.0;       // node relaxation objective, problem sense
  double incumbent = 0.0;   // best integral objective so far, problem sense
  bool has_incumbent = false;
  double gap = 0.0;         // |incumbent - bound| when has_incumbent
  int branch_var = -1;      // for kBranched / kIncumbent context
};

using BnBObserver = std::function<void(const BnBNodeEvent&)>;

}  // namespace gridsec::obs
