// gridsec::obs — live telemetry plane: progress/ETA tracking with a stall
// watchdog, a background time-series sampler over the metric registry, and
// an OpenMetrics text exposition for the embedded /metrics endpoint
// (serve.hpp).
//
// Everything here is strictly opt-in and zero-cost when dormant:
//   * Progress sites (Monte-Carlo trials, impact-matrix target loops, B&B
//     node exploration, game rounds, experiment sweeps) check one relaxed
//     atomic and construct nothing while ProgressTracker is disabled — the
//     default. The sampler, the HTTP endpoint, and the CLI's --progress
//     flag enable it.
//   * TelemetrySampler is a single background thread that only exists
//     while explicitly started; stopping takes one final sample so the
//     last ring entry equals the registry's exit snapshot.
//
// The sampler's ring exports as a versioned "gridsec.timeseries" artifact
// (schema_version 1) with the same JSON round-trip contract as report.hpp:
// write_timeseries_json + parse_timeseries are exact inverses for the
// fields the schema carries. `gridsec-inspect top` renders the artifact —
// or a live /metrics poll — as a refreshing terminal table.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::obs {

namespace telemetry_detail {
struct ProgressTask;  // telemetry.cpp internals
}  // namespace telemetry_detail

// ---------------------------------------------------------------------------
// Progress tracking.

/// Point-in-time view of one in-flight Progress scope.
struct ProgressSnapshot {
  std::string name;          // site name, e.g. "sim.montecarlo.trials"
  std::int64_t total = 0;    // 0 = indeterminate (e.g. B&B node count)
  std::int64_t done = 0;
  double elapsed_seconds = 0.0;
  double rate_per_second = 0.0;  // done / elapsed (0 until first advance)
  double eta_seconds = -1.0;     // < 0 when unknown (indeterminate/no rate)
  bool stalled = false;          // watchdog has flagged this scope
};

/// Process-global registry of live Progress scopes plus the stall
/// watchdog. All static; disabled by default so instrumented loops cost
/// one relaxed atomic load per Progress construction.
class ProgressTracker {
 public:
  [[nodiscard]] static bool enabled();
  static void set_enabled(bool enabled);

  /// Snapshot of every live scope, registration order.
  [[nodiscard]] static std::vector<ProgressSnapshot> snapshot();
  [[nodiscard]] static std::size_t active_count();

  /// Flags every live scope that has not advanced for `stall_seconds`:
  /// one kWarn log record + one obs.telemetry.stalls count per stall
  /// episode (the flag re-arms when the scope advances again). Returns how
  /// many scopes were newly flagged. The sampler calls this every tick;
  /// tests may call it directly.
  static std::size_t check_stalls(double stall_seconds);
};

/// RAII progress scope. When the tracker is disabled at construction this
/// is a complete no-op (no allocation, no registration, advance() is one
/// branch on a plain pointer). Scopes may be constructed concurrently from
/// worker threads; advance() is wait-free.
class Progress {
 public:
  /// `name` must outlive the scope (string literals at call sites).
  /// total == 0 means indeterminate: done counts up with no ETA.
  Progress(const char* name, std::int64_t total);
  ~Progress();
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  void advance(std::int64_t delta = 1) {
    if (task_ != nullptr) advance_slow(delta);
  }
  /// Re-scopes a live total (e.g. when the workload size is discovered
  /// mid-run). No-op when dormant.
  void set_total(std::int64_t total);
  [[nodiscard]] std::int64_t done() const;
  /// False when the tracker was disabled at construction.
  [[nodiscard]] bool active() const { return task_ != nullptr; }

 private:
  void advance_slow(std::int64_t delta);
  telemetry_detail::ProgressTask* task_ = nullptr;
};

// ---------------------------------------------------------------------------
// Build provenance.

/// The provenance triple baked into report.cpp at configure time, re-used
/// here so /metrics and timeseries artifacts carry it as an
/// obs.build_info labeled gauge without a side-channel file.
struct BuildInfo {
  std::string git_sha;
  std::string build_type;
  std::string compiler;
};

/// Captured once per process (cheap after the first call).
[[nodiscard]] const BuildInfo& current_build_info();

// ---------------------------------------------------------------------------
// Time-series sampling.

/// Wire-format version of the gridsec.timeseries artifact.
inline constexpr int kTimeseriesSchemaVersion = 1;
inline constexpr const char* kTimeseriesSchemaName = "gridsec.timeseries";

/// One worker of one pool at sample time (ThreadPool::stats_for_all_pools).
struct WorkerSample {
  int pool = 0;
  int worker = 0;
  std::int64_t busy_ns = 0;
  std::int64_t idle_ns = 0;
  std::int64_t tasks = 0;
};

/// One ring entry: everything the sampler saw at one instant.
struct TelemetrySample {
  double t_seconds = 0.0;  // monotonic offset from sampler start
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<WorkerSample> workers;
  std::vector<ProgressSnapshot> progress;
};

/// The exported artifact: header + samples (oldest first).
struct Timeseries {
  int schema_version = kTimeseriesSchemaVersion;
  std::string start_time_utc;  // ISO 8601, sampler start
  double cadence_ms = 0.0;
  BuildInfo build;
  std::uint64_t dropped = 0;  // ring overwrites (oldest evicted)
  std::vector<TelemetrySample> samples;
};

void write_timeseries_json(std::ostream& os, const Timeseries& ts);
/// Flat CSV, one line per scalar: t_seconds,kind,name,value with kind in
/// {counter, gauge, worker_busy_ns, worker_idle_ns, worker_tasks,
/// progress_done, progress_total}. Lossy (no header block); for
/// spreadsheets, not round-trips.
void write_timeseries_csv(std::ostream& os, const Timeseries& ts);
/// Inverse of write_timeseries_json. Rejects wrong schema name/version and
/// malformed JSON with an explanatory Status.
StatusOr<Timeseries> parse_timeseries(const std::string& json_text);

struct TelemetrySamplerOptions {
  double cadence_ms = 100.0;
  /// Ring bound; the oldest sample is evicted (and counted as dropped)
  /// once full. 4096 samples at the default cadence ≈ 7 minutes.
  std::size_t ring_capacity = 4096;
  /// Stall watchdog: scopes silent for this long get flagged (0 disables).
  double stall_after_seconds = 30.0;
  /// Heartbeat JSONL records (component obs.telemetry, kInfo) at most this
  /// often (0 disables).
  double heartbeat_every_seconds = 1.0;
  /// Mirrors a one-line progress/ETA summary to stderr on each heartbeat
  /// (the CLI's --progress flag).
  bool progress_to_stderr = false;
  /// Registry to sample; nullptr = default_registry().
  MetricRegistry* registry = nullptr;
};

/// Background sampling thread + bounded in-memory ring. start()/stop() are
/// not thread-safe against each other; everything else may run while
/// solver threads hammer the registry (TSan-covered).
class TelemetrySampler {
 public:
  TelemetrySampler();
  ~TelemetrySampler();  // stops if running
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Spawns the sampling thread and enables ProgressTracker. Fails if
  /// already running or the options are out of range.
  Status start(const TelemetrySamplerOptions& options = {});
  /// Takes one final sample (so the ring's last entry matches the
  /// registry's exit state), then joins the thread. Idempotent.
  void stop();
  [[nodiscard]] bool running() const;

  /// Takes one sample synchronously, on the caller's thread. Usable while
  /// running (the background cadence is unaffected) and after stop().
  void sample_now();

  /// Copy of the ring plus header fields, oldest sample first.
  [[nodiscard]] Timeseries snapshot() const;
  [[nodiscard]] std::size_t samples() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// OpenMetrics exposition.

/// Maps a dotted registry name onto the OpenMetrics charset: "gridsec_"
/// prefix, dots and any character outside [a-zA-Z0-9_:] become '_'.
[[nodiscard]] std::string openmetrics_name(const std::string& dotted);
/// Escapes a label value per the OpenMetrics ABNF: backslash, double
/// quote, and newline are escaped; everything else passes through.
[[nodiscard]] std::string openmetrics_escape_label(const std::string& raw);

/// Renders `registry` as an OpenMetrics text exposition: counters as
/// `<name>_total`, gauges verbatim, histograms/timers as quantile-labeled
/// gauges (p50/p90/p99) plus an `_observations` counter and `_sum` gauge;
/// timers are exported in seconds with a `_seconds` unit suffix. Includes
/// the gridsec_build_info gauge and ends with "# EOF".
void write_openmetrics(std::ostream& os, const MetricRegistry& registry);

/// The Content-Type a conforming scraper expects for the above.
inline constexpr const char* kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

}  // namespace gridsec::obs
