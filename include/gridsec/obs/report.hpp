// Run reports: self-describing, diffable JSON artifacts for every bench and
// CLI invocation.
//
// A report bundles three things under a versioned schema
// ("gridsec.bench_report", schema_version 2):
//   1. RunManifest — provenance captured once per process: git sha, build
//      type and flags, compiler, hostname, thread count, seed, CLI args,
//      start time and total wall time. Two reports from different configs
//      are never indistinguishable.
//   2. CaseResult — per-case wall-time statistics (min/median/mean/stddev
//      over N measured repetitions after W warmups) plus *metric deltas*:
//      how much each registry counter (lp.simplex.pivots, lp.bnb.nodes,
//      sim.montecarlo.failed_trials, ...) advanced across the measured
//      repetitions, total and per repetition.
//   3. The full metrics-registry dump, for ad-hoc digging.
//
// parse_report() reads the JSON back (a minimal parser lives in
// report.cpp; no external dependency), and diff_reports() compares two
// parsed reports with per-metric relative thresholds — the engine behind
// the `gridsec-benchdiff` CI gate. See docs/observability.md for the
// schema and the baseline-refresh workflow.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gridsec/util/error.hpp"

namespace gridsec::obs {

class MetricRegistry;

/// Wire-format version of RunReport JSON. Bump on breaking changes and
/// teach parse_report() about the old layout (or reject it loudly).
inline constexpr int kReportSchemaVersion = 2;
inline constexpr const char* kReportSchemaName = "gridsec.bench_report";

/// Once-per-process provenance embedded in every report.
struct RunManifest {
  std::string tool;        // program name ("micro_solvers", "gridsec_cli")
  std::string git_sha;     // configure-time sha; env GRIDSEC_GIT_SHA wins
  std::string build_type;  // CMAKE_BUILD_TYPE at configure time
  std::string compiler;    // compiler id + version (from compiler macros)
  std::string cxx_flags;   // CMAKE_CXX_FLAGS (+ per-config flags)
  std::string hostname;
  unsigned hardware_threads = 0;  // std::thread::hardware_concurrency()
  std::size_t threads = 0;        // configured worker count (resolved)
  std::uint64_t seed = 0;
  int trials = 0;
  std::vector<std::string> args;  // argv[1..]
  std::string start_time_utc;     // ISO 8601, e.g. 2026-08-06T12:00:00Z
  double wall_time_seconds = 0.0; // whole-process wall time at write time

  /// Captures everything derivable without caller input (sha, build info,
  /// hostname, start time, argv). seed/trials/threads are the caller's.
  static RunManifest capture(std::string tool, int argc,
                             const char* const* argv);
};

/// Wall-time summary over the measured repetitions of one case.
struct WallStats {
  int reps = 0;
  int warmup = 0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;
  double median_seconds = 0.0;
  double stddev_seconds = 0.0;
  double total_seconds = 0.0;

  static WallStats from_samples(int warmup, std::span<const double> seconds);
};

/// How much one registry counter advanced across a case's measured reps.
struct MetricDelta {
  std::int64_t total = 0;
  double per_rep = 0.0;
};

struct CaseResult {
  std::string name;
  WallStats wall;
  std::map<std::string, MetricDelta> metrics;  // nonzero counter deltas
};

/// Builds a CaseResult from raw per-rep timings and before/after counter
/// snapshots (MetricRegistry::counter_values()).
CaseResult make_case(std::string name, int warmup,
                     std::span<const double> rep_seconds,
                     const std::map<std::string, std::int64_t>& before,
                     const std::map<std::string, std::int64_t>& after);

struct RunReport {
  int schema_version = kReportSchemaVersion;
  RunManifest manifest;
  std::vector<CaseResult> cases;

  /// Serializes the report; when `registry` is non-null its full dump is
  /// embedded under "registry". Finalize manifest.wall_time_seconds first.
  void write_json(std::ostream& os, const MetricRegistry* registry) const;
};

/// Parses a serialized RunReport (the "registry" blob is skipped; diffing
/// operates on manifest + cases). Rejects wrong schema name/version and
/// malformed JSON with an explanatory Status.
StatusOr<RunReport> parse_report(const std::string& json_text);

/// Thresholds for diff_reports(). A tracked quantity "regresses" when the
/// new value exceeds the baseline by more than the relative threshold AND
/// by more than the absolute slack (so near-zero baselines don't trip on
/// noise). Improvements never gate.
struct DiffOptions {
  double metric_rel_threshold = 0.10;  // per-rep counter deltas
  double metric_abs_slack = 4.0;       // absolute per-rep units of slack
  /// Wall-time gating is opt-in (0 disables): CI baselines come from
  /// different hardware, so the default gate is count-based only.
  double wall_rel_threshold = 0.0;
  /// Metric names starting with any of these prefixes are reported but
  /// never gate (e.g. thread-count-dependent scheduler counters).
  std::vector<std::string> ignore_prefixes;
  /// Metric names ending with any of these suffixes carry wall-clock time
  /// (nanosecond counters such as util.threadpool.busy_ns). Like wall
  /// medians they depend on the hardware, so they are reported but never
  /// gate — in either direction: their disappearance from the new report
  /// is not treated as a coverage regression either.
  std::vector<std::string> time_suffixes{"_ns"};
};

enum class DiffVerdict {
  kOk,          // within threshold (or an improvement)
  kRegression,  // worse than baseline beyond threshold
  kInfo,        // not gated: new case/metric, or ignored prefix
};

struct DiffRow {
  std::string case_name;
  std::string quantity;  // "wall.median" or a metric name
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  // (current - baseline) / baseline
  DiffVerdict verdict = DiffVerdict::kOk;
  std::string note;
};

struct DiffReport {
  std::vector<DiffRow> rows;
  int regressions = 0;

  [[nodiscard]] bool clean() const { return regressions == 0; }
};

/// Compares `current` against `baseline` case-by-case. A case or tracked
/// metric present in the baseline but missing from `current` counts as a
/// regression (coverage loss); quantities only in `current` — e.g. newly
/// added counters that predate the baseline — are kInfo, never a failure.
/// Time-suffixed and prefix-ignored metrics are kInfo on both sides.
DiffReport diff_reports(const RunReport& baseline, const RunReport& current,
                        const DiffOptions& options = {});

}  // namespace gridsec::obs
