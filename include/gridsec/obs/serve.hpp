// Embedded single-threaded telemetry endpoint — the seed of the
// gridsec-serve ops surface.
//
// TelemetryServer binds a loopback TCP socket and answers three routes:
//   GET /metrics  — OpenMetrics text exposition of the metric registry
//                   (telemetry.hpp), Content-Type kOpenMetricsContentType;
//   GET /healthz  — "ok" (liveness);
//   GET /progress — JSON object {"progress":[...]} wrapping the live
//                   ProgressTracker snapshots.
// Anything else is 404; non-GET methods are 405. One background thread
// accepts and serves connections sequentially (scrapes are rare and the
// exposition is small); requests never block solver threads beyond the
// registry's existing mutexes.
//
// Security posture: binds 127.0.0.1 only — this is an operator's local
// inspection port, not a public listener.
//
// Under -DGRIDSEC_NO_SERVE=ON the implementation is compiled out: start()
// returns an error Status naming the option and no socket code is linked.
#pragma once

#include <cstdint>
#include <memory>

#include "gridsec/util/error.hpp"

namespace gridsec::obs {

class MetricRegistry;

struct TelemetryServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
  /// port() — the CLI logs it so scrapers can find it).
  int port = 0;
  /// Registry to expose; nullptr = default_registry().
  MetricRegistry* registry = nullptr;
};

class TelemetryServer {
 public:
  TelemetryServer();
  ~TelemetryServer();  // stops if running
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds, listens, spawns the serving thread, and enables
  /// ProgressTracker. Fails if already running, the port is out of range,
  /// or (GRIDSEC_NO_SERVE) the endpoint is compiled out.
  Status start(const TelemetryServerOptions& options = {});
  /// Wakes the serving thread and joins it. Idempotent.
  void stop();
  [[nodiscard]] bool running() const;
  /// The bound port while running, -1 otherwise.
  [[nodiscard]] int port() const;
  /// Requests answered so far (any route, any status).
  [[nodiscard]] std::uint64_t requests() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gridsec::obs
