// Leveled, structured JSONL logging for the whole pipeline.
//
// Every record is one JSON object on one line:
//   {"ts":"2026-08-06T12:00:00.123Z","level":"warn","component":"lp.simplex",
//    "msg":"solve degraded","status":"TIME_LIMIT","pivots":412}
//
// Design goals, in order:
//   1. Near-zero cost when silent. A suppressed record is one relaxed
//      atomic load plus a branch (the level gate runs before any argument
//      is evaluated); `-DGRIDSEC_NO_LOGGING=ON` compiles every call site
//      out entirely.
//   2. Lock-light. The record line is formatted entirely on the calling
//      thread; the logger mutex is held only to move the finished string
//      into the ring buffer and hand it to the sinks.
//   3. Always diagnosable after the fact. Even with no sink attached,
//      the last `Logger::kDefaultRingCapacity` records are retained in a
//      ring buffer; obs::audit embeds that tail in every audit bundle, so
//      a failed solve carries its own recent history.
//
// Configuration:
//   * `GRIDSEC_LOG_LEVEL` env var (trace|debug|info|warn|error|off)
//     overrides the compiled default (info) at first use;
//   * `GRIDSEC_LOG_STDERR=1` env var (or Logger::set_stderr_sink) mirrors
//     records to stderr;
//   * Logger::open_file_sink(path) appends records to a JSONL file.
//
// Usage (the macro argument is the bare level name):
//   GRIDSEC_LOG(kWarn, "lp.simplex")
//       .field("status", to_string(sol.status))
//       .field("pivots", sol.iterations)
//       .message("solve degraded");
// The record is emitted when the temporary dies at the end of the
// statement; .message() is optional.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gridsec::obs {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,  // threshold only; records cannot be emitted at kOff
};

/// Stable lowercase name ("trace", ..., "off").
std::string_view to_string(LogLevel level);
/// Parses a (case-insensitive) level name; false on unknown input.
bool parse_log_level(std::string_view text, LogLevel* out);

#ifndef GRIDSEC_NO_LOGGING

/// Process-global logger state. All static; the singleton lives in log.cpp
/// and is intentionally leaked so worker threads may log during teardown.
class Logger {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 256;

  /// True when `level` passes the current threshold. One relaxed atomic
  /// load — this is the hot-path gate the GRIDSEC_LOG macro runs first.
  [[nodiscard]] static bool enabled(LogLevel level);

  /// Threshold control. The first call to any Logger entry point applies
  /// the GRIDSEC_LOG_LEVEL env override; set_level wins afterwards.
  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  /// Mirrors records to stderr (also armed by GRIDSEC_LOG_STDERR=1).
  static void set_stderr_sink(bool enabled);
  /// Appends records to `path` (truncates an existing file). Returns false
  /// when the file cannot be opened. Empty path closes the sink.
  static bool open_file_sink(const std::string& path);
  static void close_file_sink();

  /// The most recent records (JSONL lines, oldest first), at most
  /// `max_records` (0 = the whole ring). Thread-safe snapshot.
  [[nodiscard]] static std::vector<std::string> tail(
      std::size_t max_records = 0);
  /// Records emitted since process start (ring overwrites included).
  [[nodiscard]] static std::uint64_t records_emitted();
  /// Drops buffered records and zeroes nothing else (threshold/sinks keep).
  static void reset_ring();

  /// Takes ownership of a fully formatted record line (no trailing
  /// newline). Called by LogEvent; exposed for tests.
  static void emit(LogLevel level, std::string line);
};

/// Builder for one record; formats into a local string and hands the
/// finished line to Logger::emit on destruction. Construct only through
/// GRIDSEC_LOG so suppressed levels never reach the constructor.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view component);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& field(std::string_view key, std::string_view value);
  LogEvent& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  LogEvent& field(std::string_view key, double value);
  LogEvent& field(std::string_view key, bool value);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  LogEvent& field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return int_field(key, static_cast<std::int64_t>(value));
    } else {
      return uint_field(key, static_cast<std::uint64_t>(value));
    }
  }
  /// Human-readable summary, emitted as the "msg" field. Optional.
  LogEvent& message(std::string_view msg);

 private:
  LogEvent& int_field(std::string_view key, std::int64_t value);
  LogEvent& uint_field(std::string_view key, std::uint64_t value);

  LogLevel level_;
  std::string line_;  // partially built record
  std::string msg_;
};

// The level gate runs before the LogEvent exists, so a suppressed call
// site never formats anything. The dangling-else shape keeps the macro a
// single statement usable inside unbraced if/else.
#define GRIDSEC_LOG(lvl, component)                                        \
  if (!::gridsec::obs::Logger::enabled(::gridsec::obs::LogLevel::lvl)) {   \
  } else                                                                   \
    ::gridsec::obs::LogEvent(::gridsec::obs::LogLevel::lvl, (component))

#else  // GRIDSEC_NO_LOGGING: every call site compiles to nothing.

class Logger {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 0;
  [[nodiscard]] static bool enabled(LogLevel) { return false; }
  static void set_level(LogLevel) {}
  [[nodiscard]] static LogLevel level() { return LogLevel::kOff; }
  static void set_stderr_sink(bool) {}
  static bool open_file_sink(const std::string&) { return true; }
  static void close_file_sink() {}
  [[nodiscard]] static std::vector<std::string> tail(std::size_t = 0) {
    return {};
  }
  [[nodiscard]] static std::uint64_t records_emitted() { return 0; }
  static void reset_ring() {}
  static void emit(LogLevel, std::string) {}
};

class LogEvent {
 public:
  LogEvent(LogLevel, std::string_view) {}
  template <typename K, typename V>
  LogEvent& field(K&&, V&&) { return *this; }
  LogEvent& message(std::string_view) { return *this; }
};

#define GRIDSEC_LOG(lvl, component) \
  if (true) {                       \
  } else                            \
    ::gridsec::obs::LogEvent(::gridsec::obs::LogLevel::lvl, (component))

#endif  // GRIDSEC_NO_LOGGING

}  // namespace gridsec::obs
