// Scoped tracing: RAII spans recorded into thread-local buffers and
// exported in Chrome trace-event JSON ("complete" events, ph:"X"), so a
// whole `defend` run can be opened in Perfetto or chrome://tracing.
//
// Cost model:
//   * tracing disabled (the default): a span construction is one relaxed
//     atomic load and a branch — below the noise floor of any solve;
//   * GRIDSEC_NO_TRACING defined: spans compile to nothing at all;
//   * tracing enabled: one steady_clock read at open, one read plus a
//     push onto a thread-local vector (per-buffer mutex, uncontended —
//     only the exporter ever takes it from another thread) at close.
//
// Usage:
//   obs::Tracer::start();
//   { GRIDSEC_TRACE_SPAN("core.game.play"); ... }   // or obs::TraceSpan
//   obs::Tracer::stop();
//   obs::Tracer::write_chrome_json(file);
//
// Buffers survive thread exit (shared ownership), so spans recorded on
// ThreadPool workers are exported even after the pool is destroyed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace gridsec::obs {

#ifndef GRIDSEC_NO_TRACING

/// Global capture control + export. All static; the singleton state lives
/// in trace.cpp and is intentionally leaked.
class Tracer {
 public:
  /// Enables span capture. Spans already open stay un-recorded (capture
  /// decisions are made at span open).
  static void start();
  /// Disables capture; already-recorded events are kept for export.
  static void stop();
  [[nodiscard]] static bool enabled();
  /// Discards every recorded event (capture state unchanged).
  static void reset();
  /// Number of completed spans recorded so far (all threads).
  [[nodiscard]] static std::size_t event_count();
  /// Writes a Chrome trace-event JSON array, one {"name","ph":"X","ts",
  /// "dur","pid","tid"} object per completed span, ts/dur in microseconds.
  static void write_chrome_json(std::ostream& os);
};

/// RAII span: records [open, close) as one complete event when tracing was
/// enabled at open. `name` must outlive the span (string literals do).
///
/// Spans are also the profiler's phase markers: when obs::Profiler is
/// enabled (see obs/prof.hpp), every span open/close additionally pushes/
/// pops a frame on the profiler's per-thread call stack. The two captures
/// are independent — either can be on without the other.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;      // nullptr = inactive (tracing was off at open)
  std::uint64_t open_ns_;
  bool prof_ = false;     // profiler was enabled at open
};

#define GRIDSEC_OBS_CONCAT_INNER(a, b) a##b
#define GRIDSEC_OBS_CONCAT(a, b) GRIDSEC_OBS_CONCAT_INNER(a, b)
#define GRIDSEC_TRACE_SPAN(name)  \
  ::gridsec::obs::TraceSpan GRIDSEC_OBS_CONCAT(gridsec_trace_span_, \
                                               __LINE__)(name)

#else  // GRIDSEC_NO_TRACING: everything compiles away.

class Tracer {
 public:
  static void start() {}
  static void stop() {}
  [[nodiscard]] static bool enabled() { return false; }
  static void reset() {}
  [[nodiscard]] static std::size_t event_count() { return 0; }
  static void write_chrome_json(std::ostream& os);  // writes "[]"
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
};

#define GRIDSEC_TRACE_SPAN(name) \
  do {                           \
  } while (false)

#endif  // GRIDSEC_NO_TRACING

}  // namespace gridsec::obs
