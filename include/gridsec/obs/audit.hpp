// Solve certificates and audit bundles: after-the-fact proof that a solver
// answer is right, and a self-contained artifact explaining it when it is
// not.
//
// Three pieces:
//   1. certify() — an independent checker. Given the lp::Problem and the
//      lp::Solution a solver returned, it recomputes primal/dual residuals,
//      complementary slackness and the duality gap from scratch (for MILP:
//      integrality, objective consistency, and BranchAndBoundStats
//      invariants) and renders a verdict. It shares no code with the
//      simplex/B&B pivoting paths, so it doubles as a differential oracle:
//      the test suite certifies every solve it produces.
//   2. AuditBundle — a versioned `gridsec.audit_bundle` JSON artifact that
//      embeds the full problem, the solution, the certificate, the binding
//      constraints with their shadow prices, optional per-actor
//      attribution rows, and the structured-log ring tail. Because the
//      problem itself rides along, `gridsec-inspect --validate` can
//      recompute the certificate independently of the process that wrote
//      the bundle.
//   3. arm_audit() — installs an lp::SolveHook so every solve in the
//      process is certified; solves that end in kNumericalError or
//      kTimeLimit are auto-dumped as bundle files (bounded count), and the
//      first failure plus the most recent solve are retained in memory for
//      `gridsec_cli --audit=FILE`.
//
// Everything here lives in namespace gridsec::obs but is built as the
// separate static library `gridsec_audit`: it must link gridsec_lp, which
// itself links gridsec_obs, so the dependency arrow is audit -> lp -> obs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "gridsec/lp/problem.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::obs {

/// Tolerances for the independent checker. All residuals are relative
/// (scaled by 1 + the magnitudes entering the comparison), so the defaults
/// survive the 1e9-range instances the differential fuzzer generates.
struct CertifyOptions {
  double feasibility_tol = 1e-6;  // primal rows + variable bounds
  double dual_tol = 1e-6;         // dual signs, reduced costs, compl. slack
  double duality_gap_tol = 1e-6;  // |primal - dual| / (1 + |p| + |d|)
  double integrality_tol = 1e-5;  // matches BranchAndBoundOptions default
  /// The solution is an LP-relaxation answer for a problem that declares
  /// integer variables (a branch-and-bound node LP, or solve_lp called on
  /// a MILP model). Integer variables are checked as continuous: the
  /// integrality and BnB-stats checks are skipped and the LP dual checks
  /// apply. See context_is_relaxation().
  bool relaxation = false;
};

/// True for solve-site contexts whose solutions are LP relaxations
/// ("lp.simplex", "lp.bnb.node") rather than integer-feasible answers
/// ("lp.bnb"). The audit hook, make_audit_bundle, and
/// `gridsec-inspect --validate` all derive CertifyOptions::relaxation
/// through this single rule so a bundle re-verifies consistently.
[[nodiscard]] bool context_is_relaxation(std::string_view context);

enum class CertVerdict {
  kVerified,       // optimal solve; every applicable check passed
  kFeasibleOnly,   // feasibility proven, optimality not claimed/checkable
  kFailed,         // at least one check violated — see violations
  kNotApplicable,  // no point to check (infeasible/unbounded/error verdicts)
};

std::string_view to_string(CertVerdict v);

/// The checker's output. Residuals are the worst relative violation seen
/// for each check family; `violations` carries one human-readable line per
/// failed check (empty iff verdict != kFailed).
struct Certificate {
  CertVerdict verdict = CertVerdict::kNotApplicable;
  bool milp = false;
  double primal_residual = 0.0;        // constraint rows
  double bound_residual = 0.0;         // variable bounds
  double dual_residual = 0.0;          // dual sign conditions
  double reduced_cost_residual = 0.0;  // recomputed vs reported d_j
  double complementary_slackness = 0.0;
  double duality_gap = 0.0;
  double integrality_residual = 0.0;   // MILP only
  double objective_residual = 0.0;     // reported obj vs c'x
  std::vector<std::string> violations;

  /// True when nothing contradicts the solver's answer (kFailed is the
  /// only failing verdict; kNotApplicable is vacuously fine).
  [[nodiscard]] bool ok() const { return verdict != CertVerdict::kFailed; }
};

/// Independently verifies `solution` against `problem`. Never solves
/// anything; O(nnz) arithmetic only. Safe to call concurrently.
[[nodiscard]] Certificate certify(const lp::Problem& problem,
                                  const lp::Solution& solution,
                                  const CertifyOptions& options = {});

/// A constraint active at the solution point, with its shadow price.
struct BindingConstraint {
  int row = -1;
  std::string name;
  std::string sense;    // "<=", ">=", "="
  double activity = 0.0;
  double rhs = 0.0;
  double dual = 0.0;    // 0 when the solution carries no duals
};

/// Rows whose activity meets the rhs within a relative `tol`. Equality
/// rows of a feasible point are always binding.
[[nodiscard]] std::vector<BindingConstraint> binding_constraints(
    const lp::Problem& problem, const lp::Solution& solution,
    double tol = 1e-6);

/// One narrative row attached to a bundle ("actor" -> explanation), e.g.
/// "attacker:substation_4" -> "impact 12.7, within budget 2, selected".
struct AttributionRow {
  std::string key;
  std::string note;
};

/// The versioned audit artifact. schema "gridsec.audit_bundle", version 1.
struct AuditBundle {
  int version = 1;
  std::string context;      // solve site, e.g. "lp.simplex", "lp.bnb"
  std::string trigger;      // "failure", "capture", "manual"
  std::string created_utc;  // ISO8601, filled by make_audit_bundle
  lp::Problem problem;
  lp::Solution solution;
  Certificate certificate;
  std::vector<BindingConstraint> binding;
  std::vector<AttributionRow> attribution;
  std::vector<std::string> log_tail;  // JSONL lines from the logger ring
};

/// Assembles a bundle: runs certify(), extracts binding constraints,
/// snapshots the current attribution rows and the logger ring tail.
[[nodiscard]] AuditBundle make_audit_bundle(
    const lp::Problem& problem, const lp::Solution& solution,
    std::string context, std::string trigger,
    const CertifyOptions& options = {});

void write_audit_bundle(std::ostream& os, const AuditBundle& bundle);
[[nodiscard]] Status write_audit_bundle_file(const std::string& path,
                                             const AuditBundle& bundle);
[[nodiscard]] StatusOr<AuditBundle> parse_audit_bundle(
    const std::string& text);
[[nodiscard]] StatusOr<AuditBundle> read_audit_bundle_file(
    const std::string& path);

/// Process-global attribution rows attached to every subsequently created
/// bundle. The core/CLI layers push narrative context here (which targets
/// the SA picked and why, defender budget splits) before solving.
void set_audit_attribution(std::vector<AttributionRow> rows);
void add_audit_attribution(std::string key, std::string note);
void clear_audit_attribution();
[[nodiscard]] std::vector<AttributionRow> audit_attribution();

/// arm_audit() behaviour knobs.
struct AuditConfig {
  /// Directory for auto-dumped failure bundles (created files are named
  /// audit_fail_<seq>.json). Empty = keep failures in memory only.
  std::string dump_dir;
  /// Upper bound on files written per process; fuzz runs produce
  /// thousands of intentional failures and the first few carry the signal.
  int max_dumps = 16;
  /// Also retain the most recent solve of any status (for --audit=FILE).
  bool capture_all = false;
  CertifyOptions certify;
};

/// Installs the lp::SolveHook: every subsequent LP/MILP solve is
/// certified (counters obs.audit.certified / obs.audit.cert_failures),
/// and solves ending in kNumericalError or kTimeLimit are dumped/retained
/// per `config`. Re-arming replaces the previous configuration.
void arm_audit(AuditConfig config);
/// Uninstalls the hook. Captured bundles remain readable until re-arm.
void disarm_audit();
[[nodiscard]] bool audit_armed();

/// Bundles auto-dumped to files since the last arm_audit().
[[nodiscard]] std::uint64_t audit_dump_count();
/// Certification failures observed by the hook since the last arm_audit().
[[nodiscard]] std::uint64_t audit_cert_failure_count();

/// First failure-triggered bundle since arm (frozen); false when none.
[[nodiscard]] bool first_audit_failure(AuditBundle* out);
/// Most recent solve observed (requires capture_all); false when none.
[[nodiscard]] bool last_audit_capture(AuditBundle* out);

}  // namespace gridsec::obs
