// gridsec::obs::prof — in-process self-profiling: phase-attributed wall and
// thread-CPU time, heap-allocation accounting, and flamegraph export.
//
// The profiler rides the existing TraceSpan hierarchy: every
// GRIDSEC_TRACE_SPAN site doubles as a profiling phase marker. While the
// profiler is enabled, each span open/close maintains a per-thread frame
// stack and accumulates into a call tree keyed by span-name path, so the
// same instrumentation that feeds Chrome traces also answers "which phase
// of compute_impact_matrix burns the cycles".
//
// What gets recorded per call-tree node:
//   * count         — times the phase was entered (completed frames);
//   * wall_ns       — inclusive wall time (steady clock);
//   * cpu_ns        — inclusive thread-CPU time (CLOCK_THREAD_CPUTIME_ID);
//   * excl_*        — the above minus all children (computed at snapshot);
//   * alloc_count / alloc_bytes — heap traffic attributed EXCLUSIVELY to
//     the phase that was topmost when the allocation happened.
//
// Allocation accounting replaces the global operator new/delete (prof.cpp)
// and is always on in a default build: per-thread counters feed phase
// attribution, process-wide relaxed atomics feed the obs.alloc.count /
// obs.alloc.bytes / obs.alloc.peak_bytes registry counters published by
// sync_alloc_counters(). `count` and `bytes` track *requested* sizes and
// are deterministic for a given binary; `live`/`peak` use
// malloc_usable_size and depend on the allocator. Everything in this
// header compiles to no-ops under GRIDSEC_NO_PROFILING (the parse/format
// helpers for gridsec.profile artifacts stay available so tools keep
// working against profiles produced elsewhere).
//
// Cost model:
//   * GRIDSEC_NO_PROFILING: zero — the operator new replacement is not
//     even linked;
//   * profiler disabled (default at runtime): one extra relaxed atomic
//     load per TraceSpan, plus the allocation hooks (a handful of relaxed
//     increments per new/delete — measured < 3% wall on micro_solvers);
//   * profiler enabled: two clock reads and one uncontended per-thread
//     mutex lock per span open and close.
//
// Concurrency: recording threads only touch their own tree under their own
// mutex; Profiler::snapshot() merges every thread's tree from any thread.
// TSan-clean by construction (tested).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gridsec/util/error.hpp"

namespace gridsec::obs {

/// Wire-format version of the gridsec.profile JSON artifact.
inline constexpr int kProfileSchemaVersion = 1;
inline constexpr const char* kProfileSchemaName = "gridsec.profile";

/// One node of the (merged, thread-agnostic) call-tree profile.
struct ProfileNode {
  std::string name;                // span name, e.g. "lp.simplex.solve"
  std::int64_t count = 0;          // completed frames
  std::int64_t wall_ns = 0;        // inclusive wall time
  std::int64_t cpu_ns = 0;         // inclusive thread-CPU time
  std::int64_t excl_wall_ns = 0;   // wall minus children
  std::int64_t excl_cpu_ns = 0;    // cpu minus children
  std::int64_t alloc_count = 0;    // exclusive: allocs while topmost
  std::int64_t alloc_bytes = 0;    // exclusive: requested bytes
  std::vector<ProfileNode> children;  // sorted by name

  /// Direct child by name, nullptr when absent.
  [[nodiscard]] const ProfileNode* find(const std::string& child) const;
};

/// Process-wide allocation totals since start (requested sizes; live/peak
/// use malloc_usable_size, see header comment).
struct AllocTotals {
  std::int64_t count = 0;
  std::int64_t bytes = 0;
  std::int64_t live_bytes = 0;
  std::int64_t peak_bytes = 0;
};

/// A merged snapshot of everything the profiler knows.
struct Profile {
  int schema_version = kProfileSchemaVersion;
  ProfileNode root;            // name "(root)"; children = top-level phases
  std::int64_t threads = 0;    // threads that recorded at least one frame
  AllocTotals alloc;           // process-wide at snapshot time
  std::int64_t pool_busy_ns = 0;  // util.threadpool.busy_ns at snapshot
  std::int64_t pool_idle_ns = 0;  // util.threadpool.idle_ns at snapshot
};

/// Weight used for folded-stack export and the inspect ranking.
enum class ProfileWeight { kWallMicros, kCpuMicros, kAllocCount, kAllocBytes };

/// Writes the versioned gridsec.profile JSON document.
void write_profile_json(std::ostream& os, const Profile& profile);

/// Writes flamegraph-ready folded stacks: one "a;b;c VALUE" line per
/// call-tree path with a nonzero exclusive weight. Feed to flamegraph.pl.
void write_profile_folded(std::ostream& os, const Profile& profile,
                          ProfileWeight weight = ProfileWeight::kWallMicros);

/// Parses a gridsec.profile document back (the inverse of
/// write_profile_json). Rejects wrong schema name/version loudly.
StatusOr<Profile> parse_profile(const std::string& json_text);

/// Flattened view for rankings: "a;b;c" path plus a pointer into the
/// profile tree. Stable order: depth-first, children by name.
struct ProfileRow {
  std::string path;
  const ProfileNode* node = nullptr;
};
[[nodiscard]] std::vector<ProfileRow> flatten_profile(const Profile& profile);

/// Exclusive weight of `node` under `weight` (micros for the time weights).
[[nodiscard]] std::int64_t profile_weight_value(const ProfileNode& node,
                                                ProfileWeight weight);

#ifndef GRIDSEC_NO_PROFILING

/// Global capture control. All static; the singleton state lives in
/// prof.cpp and is intentionally leaked (worker threads may record frames
/// during static teardown).
class Profiler {
 public:
  /// Enables frame capture. Spans already open stay unprofiled (the
  /// decision is made at span open, like tracing).
  static void start();
  /// Disables capture; the accumulated tree is kept for snapshot().
  static void stop();
  [[nodiscard]] static bool enabled();
  /// Discards every tree and open frame stack. Do not call concurrently
  /// with recording if you care about attribution of in-flight spans
  /// (it is memory-safe either way).
  static void reset();
  /// Merges every thread's tree, computes exclusive times, and attaches
  /// allocation + thread-pool totals. Callable while recording.
  [[nodiscard]] static Profile snapshot();
};

/// Process-wide allocation totals. count/bytes always accumulate (cheap
/// per-thread increments, folded into the process totals at thread-pool
/// task boundaries and whenever totals are read); live_bytes/peak_bytes
/// are only tracked while the profiler is recording — they need a
/// malloc_usable_size() call per alloc/free, which is kept off the
/// default-build hot path. Other threads' traffic is included as of
/// their last flush point.
[[nodiscard]] AllocTotals alloc_totals();

/// Publishes allocation totals into default_registry() as monotonic
/// counters obs.alloc.count / obs.alloc.bytes / obs.alloc.peak_bytes (plus
/// the obs.alloc.live_bytes gauge). Call before reading counter snapshots
/// that should include heap traffic — the bench harness does this around
/// every case.
void sync_alloc_counters();

namespace prof_detail {
/// TraceSpan integration points — not for direct use.
void frame_push(const char* name);
void frame_pop();
/// Folds the calling thread's pending allocation counts into the process
/// totals. The thread pool calls this after every task so worker traffic
/// is visible to alloc_totals() without per-allocation atomics.
void flush_thread_allocs() noexcept;
}  // namespace prof_detail

#else  // GRIDSEC_NO_PROFILING: capture machinery compiles away.

class Profiler {
 public:
  static void start() {}
  static void stop() {}
  [[nodiscard]] static bool enabled() { return false; }
  static void reset() {}
  [[nodiscard]] static Profile snapshot() { return Profile{}; }
};

[[nodiscard]] inline AllocTotals alloc_totals() { return AllocTotals{}; }
inline void sync_alloc_counters() {}

namespace prof_detail {
inline void frame_push(const char*) {}
inline void frame_pop() {}
inline void flush_thread_allocs() noexcept {}
}  // namespace prof_detail

#endif  // GRIDSEC_NO_PROFILING

}  // namespace gridsec::obs
