// Parallel Monte-Carlo trial harness.
//
// Every experiment in the paper averages over random ownership draws and
// noise realizations. run_trials executes `fn(trial_index, rng)` for each
// trial with a counter-derived RNG stream, so results are bit-identical
// regardless of thread count or scheduling order.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "gridsec/lp/basis.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/telemetry.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/error.hpp"
#include "gridsec/util/rng.hpp"
#include "gridsec/util/stats.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::sim {

/// Runs `n` trials in parallel over `pool` (serially when pool is null).
/// Each trial gets Rng(seed).derive_stream(trial); results are returned in
/// trial order.
template <typename T>
std::vector<T> run_trials(ThreadPool* pool, std::size_t n,
                          std::uint64_t seed,
                          const std::function<T(std::size_t, Rng&)>& fn) {
  GRIDSEC_TRACE_SPAN("sim.run_trials");
  static obs::Counter& c_trials =
      obs::default_registry().counter("sim.montecarlo.trials");
  c_trials.add(static_cast<std::int64_t>(n));
  obs::Progress progress("sim.montecarlo.trials",
                         static_cast<std::int64_t>(n));
  std::vector<T> results(n);
  const Rng parent(seed);
  parallel_for(pool, n, [&](std::size_t i) {
    GRIDSEC_TRACE_SPAN("sim.trial");
    Rng rng = parent.derive_stream(i);
    results[i] = fn(i, rng);
    progress.advance();
  });
  return results;
}

/// Scalar convenience: runs trials and folds them into RunningStats.
RunningStats run_scalar_trials(
    ThreadPool* pool, std::size_t n, std::uint64_t seed,
    const std::function<double(std::size_t, Rng&)>& fn);

// ---------------------------------------------------------------------------
// Degrade-don't-die variant.
//
// run_trials_robust lets individual trials fail as Status values instead of
// taking the whole sweep down: failed trials are recorded (with an obs
// breakdown by error code), numerical failures get a bounded number of
// fresh-stream retries, and the sweep returns partial results plus a
// failure summary. A trial that succeeds on attempt 0 sees exactly the same
// RNG stream as run_trials, so fully-successful sweeps are bit-identical to
// the non-robust harness.
//
// Retries are the SECOND line of defense: with the numerical-recovery
// ladder installed (robust::install_recovery), an LP solve that hits
// kNumericalError escalates through the ladder in place and usually comes
// back certified-optimal — the trial never fails at all. Only failures the
// ladder cannot resolve (or non-LP trial errors) reach the retry loop here.

struct RobustTrialOptions {
  /// Total attempts per trial (1 = no retry). Retries fire only for
  /// ErrorCode::kNumericalError — the one failure class where a perturbed
  /// re-solve (e.g. robust::jitter_costs) plausibly succeeds. Each retry
  /// gets an independent RNG stream derived from the trial's stream.
  int max_attempts = 1;
  /// Abort the sweep on the first (post-retry) failure. Remaining trials
  /// are skipped, not failed; which trials got skipped depends on thread
  /// timing, so fail-fast trades determinism of coverage for latency.
  bool fail_fast = false;
};

/// One failed trial: which trial and the Status from its final attempt.
struct TrialFailure {
  std::size_t trial = 0;
  Status status;
};

template <typename T>
struct RobustTrialResults {
  /// Per-trial outcome in trial order; nullopt = failed or skipped.
  std::vector<std::optional<T>> results;
  std::vector<TrialFailure> failures;  // trial order
  std::size_t failed = 0;
  std::size_t skipped = 0;  // fail-fast only
  std::size_t retries = 0;  // extra attempts spent across all trials

  [[nodiscard]] bool all_ok() const { return failed == 0 && skipped == 0; }
  [[nodiscard]] std::size_t succeeded() const {
    return results.size() - failed - skipped;
  }
};

namespace detail {
/// Metrics hooks (montecarlo.cpp): sim.montecarlo.failed_trials plus a
/// per-code breakdown counter, and sim.montecarlo.retries. Each failure is
/// also logged (trial index + sweep seed + error) so the record lands in
/// the audit-bundle log tail of whatever solve failed the trial.
void note_trial_failure(const Status& status, std::size_t trial,
                        std::uint64_t seed);
void note_trial_retries(std::size_t retries);
/// "3/100 trials failed (NUMERICAL_ERROR x2, TIME_LIMIT x1), 4 retries".
std::string summarize_failures(std::size_t n,
                               const std::vector<TrialFailure>& failures,
                               std::size_t skipped, std::size_t retries);
}  // namespace detail

/// Runs `n` trials like run_trials, but a trial reports failure by
/// returning a non-ok StatusOr (exceptions escaping `fn` are converted to
/// kInternal). `fn` receives (trial, rng, attempt); attempt 0 carries the
/// canonical per-trial stream, attempt k > 0 an independent retry stream.
///
/// `fn` may instead take (trial, rng, attempt, lp::Basis*): the harness
/// then owns one basis slot per trial that lives across retry attempts.
/// A trial that stores its solve's final basis there on attempt 0 hands
/// every retry a warm start for the perturbed re-solve; the slot starts
/// empty, so attempt 0 itself is unaffected and fully-successful sweeps
/// stay bit-identical to the 3-argument form.
template <typename T, typename F>
RobustTrialResults<T> run_trials_robust(
    ThreadPool* pool, std::size_t n, std::uint64_t seed, const F& fn,
    const RobustTrialOptions& options = {}) {
  constexpr bool kWarmSlot =
      std::is_invocable_r_v<StatusOr<T>, const F&, std::size_t, Rng&, int,
                            lp::Basis*>;
  static_assert(kWarmSlot ||
                    std::is_invocable_r_v<StatusOr<T>, const F&, std::size_t,
                                          Rng&, int>,
                "run_trials_robust fn must be callable as "
                "StatusOr<T>(trial, rng, attempt[, lp::Basis*])");
  GRIDSEC_TRACE_SPAN("sim.run_trials_robust");
  static obs::Counter& c_trials =
      obs::default_registry().counter("sim.montecarlo.trials");
  c_trials.add(static_cast<std::int64_t>(n));

  RobustTrialResults<T> out;
  out.results.assign(n, std::nullopt);
  std::vector<Status> error(n, Status::ok());
  std::vector<unsigned char> skipped(n, 0);
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> retries{0};
  const int max_attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  const Rng parent(seed);
  obs::Progress progress("sim.montecarlo.trials",
                         static_cast<std::int64_t>(n));

  parallel_for(pool, n, [&](std::size_t i) {
    // Every exit path below — success, failure, skip — is one finished
    // trial as far as progress/ETA accounting is concerned.
    struct AdvanceOnExit {
      obs::Progress& progress;
      ~AdvanceOnExit() { progress.advance(); }
    } advance_on_exit{progress};
    if (options.fail_fast && abort.load(std::memory_order_relaxed)) {
      skipped[i] = 1;
      return;
    }
    Status last = Status::ok();
    lp::Basis warm;  // per-trial slot shared across retry attempts
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      GRIDSEC_TRACE_SPAN("sim.trial");
      Rng rng = attempt == 0
                    ? parent.derive_stream(i)
                    : parent.derive_stream(i).derive_stream(
                          static_cast<std::uint64_t>(attempt));
      StatusOr<T> r = [&]() -> StatusOr<T> {
        try {
          if constexpr (kWarmSlot) {
            return fn(i, rng, attempt, &warm);
          } else {
            return fn(i, rng, attempt);
          }
        } catch (const std::exception& e) {
          return Status::internal(std::string("trial threw: ") + e.what());
        }
      }();
      if (r.is_ok()) {
        out.results[i] = std::move(r).value();
        return;
      }
      last = r.status();
      if (last.code() != ErrorCode::kNumericalError) break;
      if (attempt + 1 < max_attempts) {
        retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    error[i] = last;
    if (options.fail_fast) abort.store(true, std::memory_order_relaxed);
  });

  for (std::size_t i = 0; i < n; ++i) {
    if (skipped[i] != 0) {
      ++out.skipped;
    } else if (!error[i].is_ok()) {
      ++out.failed;
      out.failures.push_back({i, error[i]});
      detail::note_trial_failure(error[i], i, seed);
    }
  }
  out.retries = retries.load(std::memory_order_relaxed);
  detail::note_trial_retries(out.retries);
  return out;
}

/// Scalar robust sweep: partial statistics over the successful trials plus
/// the failure bookkeeping.
struct RobustScalarResults {
  RunningStats stats;  // over successful trials only
  std::vector<TrialFailure> failures;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t retries = 0;
  std::size_t trials = 0;

  [[nodiscard]] bool all_ok() const { return failed == 0 && skipped == 0; }
  /// Human-readable failure summary ("all N trials succeeded" when clean).
  [[nodiscard]] std::string summary() const;
};

RobustScalarResults run_scalar_trials_robust(
    ThreadPool* pool, std::size_t n, std::uint64_t seed,
    const std::function<StatusOr<double>(std::size_t, Rng&, int)>& fn,
    const RobustTrialOptions& options = {});

}  // namespace gridsec::sim
