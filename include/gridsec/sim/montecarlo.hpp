// Parallel Monte-Carlo trial harness.
//
// Every experiment in the paper averages over random ownership draws and
// noise realizations. run_trials executes `fn(trial_index, rng)` for each
// trial with a counter-derived RNG stream, so results are bit-identical
// regardless of thread count or scheduling order.
#pragma once

#include <functional>
#include <vector>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/rng.hpp"
#include "gridsec/util/stats.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::sim {

/// Runs `n` trials in parallel over `pool` (serially when pool is null).
/// Each trial gets Rng(seed).derive_stream(trial); results are returned in
/// trial order.
template <typename T>
std::vector<T> run_trials(ThreadPool* pool, std::size_t n,
                          std::uint64_t seed,
                          const std::function<T(std::size_t, Rng&)>& fn) {
  GRIDSEC_TRACE_SPAN("sim.run_trials");
  static obs::Counter& c_trials =
      obs::default_registry().counter("sim.montecarlo.trials");
  c_trials.add(static_cast<std::int64_t>(n));
  std::vector<T> results(n);
  const Rng parent(seed);
  parallel_for(pool, n, [&](std::size_t i) {
    GRIDSEC_TRACE_SPAN("sim.trial");
    Rng rng = parent.derive_stream(i);
    results[i] = fn(i, rng);
  });
  return results;
}

/// Scalar convenience: runs trials and folds them into RunningStats.
RunningStats run_scalar_trials(
    ThreadPool* pool, std::size_t n, std::uint64_t seed,
    const std::function<double(std::size_t, Rng&)>& fn);

}  // namespace gridsec::sim
