// Parametric scenario generators for tests, property sweeps, and benches.
#pragma once

#include "gridsec/flow/network.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::sim {

/// A producer → N transmission segments → consumer chain. Useful for the
/// series-competition analyses.
flow::Network make_chain(int segments, double supply_cost, double price,
                         double capacity, double segment_cost = 0.0,
                         double segment_loss = 0.0);

/// One hub, two competing generators (cheap capacity-limited, dear
/// abundant), one consumer — the competitor-elimination micro-scenario.
flow::Network make_duopoly(double cheap_capacity = 60.0,
                           double cheap_cost = 10.0,
                           double dear_capacity = 100.0,
                           double dear_cost = 30.0, double demand = 80.0,
                           double price = 50.0);

struct RandomGridOptions {
  int hubs = 6;
  /// Probability that each ordered hub pair gets a transmission edge, on
  /// top of a guaranteed ring (keeps the graph connected).
  double extra_edge_prob = 0.2;
  double supply_cost_min = 5.0, supply_cost_max = 40.0;
  double price_min = 40.0, price_max = 95.0;
  double capacity_min = 20.0, capacity_max = 120.0;
  double line_loss_max = 0.1;
  /// Fraction of hubs that get a generator / a consumer.
  double supply_density = 0.8, demand_density = 0.8;
};

/// A connected random energy network: ring of hubs plus random chords,
/// generators and consumers scattered per the densities. Always validates.
flow::Network make_random_grid(const RandomGridOptions& options, Rng& rng);

}  // namespace gridsec::sim
