// A second interconnected gas-electric scenario: four Gulf-Coast states.
//
// Structurally distinct from the western-US model: the region is gas-rich
// (large in-region production, net exports instead of imports) and its
// electric fleet leans heavily on gas-fired generation, so the
// gas→electric interdependency is much tighter — a gas-side attack
// propagates harder. Used by tests and benches to check that the paper's
// qualitative results are not artifacts of one topology.
//
// Same conventions as western_us: synthetic EIA-magnitude data, 1 %/400 km
// losses from state centroids, optional challenging-model adjustments.
#pragma once

#include "gridsec/sim/western_us.hpp"

namespace gridsec::sim {

/// Builds the four-state (TX, LA, OK, NM) Gulf-Coast model. Reuses
/// WesternUsOptions/WesternUsModel (the shapes are identical; only the
/// data differs): 8 hubs, 10 long-haul edges, 4 converters.
WesternUsModel build_gulf_coast(const WesternUsOptions& options = {});

}  // namespace gridsec::sim
