// Structured ownership models for the state scenarios.
//
// The paper draws ownership uniformly (each asset lands on any of the N
// actors with probability 1/N). Real energy markets are structured:
// utilities integrate vertically within a territory, or split horizontally
// by sector (gas companies vs electric companies vs transmission
// operators). These factories build such ownerships for a WesternUsModel
// (or Gulf-Coast) so the attack economy can be compared across market
// structures (bench/ext_ownership).
#pragma once

#include "gridsec/cps/ownership.hpp"
#include "gridsec/sim/western_us.hpp"

namespace gridsec::sim {

/// One vertically-integrated utility per state: every asset touching a
/// state's hubs (supplies, demands, converters) belongs to that state's
/// actor; interstate long-haul edges belong to the *origin* state's actor.
cps::Ownership ownership_by_state(const WesternUsModel& model);

/// Horizontal sector split, 3 actors:
///   0 — gas (production, imports, pipelines, gas consumers),
///   1 — electric generation + conversion,
///   2 — electric transmission + electric consumers.
cps::Ownership ownership_by_sector(const WesternUsModel& model);

/// Concentrated random ownership: actor k is drawn with weight ~1/(k+1)
/// (Zipf-like) — a few majors and a fringe. Matches the paper's uniform
/// model at the limit of equal weights.
cps::Ownership ownership_concentrated(int num_edges, int num_actors,
                                      Rng& rng);

}  // namespace gridsec::sim
