// The paper's experimental infrastructure (§III-A): an interconnected
// natural-gas / electric system over six western US states.
//
// Structure mirrors Figure 1: per state one gas hub and one electric hub
// (12 hubs total), a gas consumer and an electric consumer per state,
// interstate long-haul pipelines and interties (18 edges), per-state
// generation mixes (hydro/coal/nuclear/solar/wind supply edges), gas
// production and out-of-model imports (priced 25% below local retail, the
// paper's transportation-cost rule), and gas→electric conversion edges
// that realize the interdependency. Losses follow the paper's method:
// 1% per 400 km of inter-centroid great-circle distance.
//
// Data substitution: the EIA 2014 datasets the paper used are summarized
// here as synthetic per-state constants with realistic magnitudes (units:
// GWh/day for energy, $/MWh for prices). The experiments measure relative
// economics, which depend on the structure — scarcity, competition points,
// interdependency — all of which are reproduced. See DESIGN.md.
//
// The paper's "challenging model" adjustments are applied by default:
// installed electric generation capacity −25%, demand +65%, leaving the
// system with roughly 15% spare capacity.
#pragma once

#include <string>
#include <vector>

#include "gridsec/flow/network.hpp"

namespace gridsec::sim {

struct WesternUsOptions {
  /// Fraction of installed electric generation capacity removed
  /// (maintenance/climate; §III-A2).
  double capacity_derating = 0.25;
  /// Demand increase over the daily average (peak-of-winter; §III-A2).
  double demand_surge = 0.65;
  /// Set false for the unadjusted baseline model.
  bool apply_adjustments = true;
};

struct WesternUsModel {
  flow::Network network;
  std::vector<std::string> states;     // 6 state codes
  std::vector<flow::NodeId> gas_hub;   // per state
  std::vector<flow::NodeId> elec_hub;  // per state
  /// The 18 interstate long-haul edges (9 gas pipelines, 9 interties).
  std::vector<flow::EdgeId> long_haul;
  /// The gas→electric conversion edges, one per state.
  std::vector<flow::EdgeId> converters;
};

/// Builds the six-state model. The result validates and solves.
WesternUsModel build_western_us(const WesternUsOptions& options = {});

/// Great-circle distance (km) between two (lat, lon) points in degrees;
/// exposed for tests of the loss calculation.
double haversine_km(double lat1, double lon1, double lat2, double lon2);

/// The paper's loss rule: 1% per 400 km, as a fraction.
double loss_from_distance(double km);

}  // namespace gridsec::sim
