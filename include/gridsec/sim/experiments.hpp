// The paper's three experiments (§III-B/C/D) as reusable routines.
//
// Each routine sweeps the paper's independent variables, Monte-Carlo
// averaging over random ownership draws and noise realizations, and
// returns one point per (x, series) pair — exactly the series plotted in
// Figures 2-7. The figure benches print these; integration tests assert
// their qualitative shapes (monotonicity, saturation, crossovers).
#pragma once

#include <vector>

#include "gridsec/core/game.hpp"
#include "gridsec/sim/montecarlo.hpp"

namespace gridsec::sim {

struct ExperimentOptions {
  int trials = 20;           // ownership draws per point
  std::uint64_t seed = 2015; // venue year; any fixed value works
  ThreadPool* pool = nullptr;
  cps::ImpactOptions impact;
  /// Per-trial failure policy. Failed trials are dropped from a point's
  /// statistics — the point reports partial results plus failed_trials —
  /// with the failure breakdown recorded in the obs metrics
  /// (sim.montecarlo.failed_trials / sim.montecarlo.failed.<CODE>).
  /// Set robust.fail_fast to abort a sweep on the first failure instead.
  RobustTrialOptions robust;
};

// ---------------------------------------------------------------------------
// Experiment 1 (Figure 2): total gain and loss vs. number of actors.

struct GainLossPoint {
  int actors = 0;
  double mean_gain = 0.0;  // Σ_t Σ_a max(IM[a,t],0), averaged over ownership
  double mean_loss = 0.0;  // Σ_t Σ_a min(IM[a,t],0) (non-positive)
  double mean_net = 0.0;   // gain + loss = Σ_t system impact (ownership-free)
  double se_gain = 0.0;
  double se_loss = 0.0;
  int failed_trials = 0;  // trials excluded from the statistics above
};

std::vector<GainLossPoint> experiment_gain_loss(
    const flow::Network& net, const std::vector<int>& actor_counts,
    const ExperimentOptions& options = {});

// ---------------------------------------------------------------------------
// Experiment 2 (Figures 3-4): strategic-adversary profitability vs. noise.

struct AdversaryNoiseConfig {
  std::vector<int> actor_counts{2, 4, 6, 12};
  std::vector<double> sigmas{0.0, 0.05, 0.1, 0.2, 0.4, 0.8};
  int max_targets = 6;  // the paper's "maximum of six targets"
};

struct AdversaryNoisePoint {
  int actors = 0;
  double sigma = 0.0;
  double anticipated = 0.0;  // SA's expectation on its noisy view (Fig 4)
  double observed = 0.0;     // realized on the ground truth (Figs 3-4)
  double se_anticipated = 0.0;
  double se_observed = 0.0;
  int failed_trials = 0;  // trials excluded from the statistics above
};

std::vector<AdversaryNoisePoint> experiment_adversary_noise(
    const flow::Network& net, const AdversaryNoiseConfig& config,
    const ExperimentOptions& options = {});

// ---------------------------------------------------------------------------
// Experiment 3 (Figures 5-7): defense effectiveness.

struct DefenseExperimentConfig {
  std::vector<int> actor_counts{2, 4, 6, 12};
  std::vector<double> defender_sigmas{0.0, 0.05, 0.1, 0.2, 0.4, 0.8};
  /// System-wide defense budget in units of asset-defense costs; the paper
  /// fixes it at 12 assets and splits it evenly across actors.
  double system_budget_assets = 12.0;
  /// Uniform per-asset defense cost. Sized to be a meaningful fraction of
  /// typical attack impacts (thousands of $), so the paper's
  /// misaligned-incentive and budget-pooling effects can bite; a token cost
  /// would let every owner trivially self-defend.
  double defense_cost = 2000.0;
  bool collaborative = false;
  /// Attack-probability estimation samples (the defender's SA simulations).
  int pa_samples = 5;
  /// The defender's speculation of the adversary's knowledge noise
  /// (§II-F2). Independent of the defender's own noise: even a perfectly
  /// informed defender hedges across the targets a *plausibly informed*
  /// adversary might pick, which is what makes the per-actor budget size
  /// (system budget / N) matter.
  double speculated_adversary_sigma = 0.2;
  /// The actual adversary: single fixed attack, perfect knowledge (the
  /// paper's Fig 5 setup).
  int adversary_max_targets = 1;
  double adversary_sigma = 0.0;
  /// Give every defender its own noisy view and Pa estimate (§II-F2's
  /// Pa(a,t)); costs one impact matrix + Pa estimation per actor per game.
  bool per_defender_views = false;
};

struct DefensePoint {
  int actors = 0;
  double sigma = 0.0;        // defender noise
  bool collaborative = false;
  double effectiveness = 0.0;  // gain_undefended − gain_defended, averaged
  double se = 0.0;
  double mean_gain_undefended = 0.0;
  /// Mean of per-trial effectiveness / gain_undefended — the fraction of
  /// the attack's value the defense removes (trials with a ~zero-gain
  /// attack are skipped). This normalizes away the attack getting more
  /// lucrative as actor count grows.
  double relative_effectiveness = 0.0;
  double se_relative = 0.0;
  int failed_trials = 0;  // trials excluded from the statistics above
};

std::vector<DefensePoint> experiment_defense(
    const flow::Network& net, const DefenseExperimentConfig& config,
    const ExperimentOptions& options = {});

}  // namespace gridsec::sim
