// Stackelberg defense: leader-follower investment against a re-optimizing
// adversary.
//
// The paper's defenders (§II-F) treat the attack distribution Pa as fixed
// once estimated. A strategic defender can do better by anticipating that
// the adversary re-optimizes *after* seeing (or probing) the defense: the
// defender leads, the SA follows with its best response against the
// defended system. This module implements the natural greedy leader:
// repeatedly commit the defense whose addition minimizes the follower's
// best achievable return, stopping when the budget is exhausted or no
// addition helps. Exact leader optimization is NP-hard (set cover
// flavored); the greedy is the standard baseline and is compared against
// the paper's static defender in the ablation bench.
//
// Defense semantics match the game evaluator: a defended target's impact
// is scaled by (1 − mitigation) in the follower's world.
#pragma once

#include <vector>

#include "gridsec/core/adversary.hpp"
#include "gridsec/cps/ownership.hpp"

namespace gridsec::core {

struct StackelbergConfig {
  AdversaryConfig adversary;
  /// Uniform cost to defend one target.
  double defense_cost = 1.0;
  /// Total leader budget (across all actors; the Stackelberg leader is the
  /// coalition of all defenders).
  double budget = 0.0;
  /// Effect removed from a defended target.
  double mitigation = 1.0;
};

struct StackelbergPlan {
  std::vector<bool> defended;
  /// The follower's best response against the final defense.
  AttackPlan follower_response;
  double follower_return = 0.0;   // SA's value after defense
  double undefended_return = 0.0; // SA's value with no defense
  double spending = 0.0;
  int rounds = 0;
};

/// Greedy leader: in each round, evaluates every undefended target's
/// marginal effect on the follower's optimum and commits the best one.
/// O(rounds · targets) follower solves — the follower solve is the
/// combinatorial SA plan, so this is intended for the ~60-asset scale.
StackelbergPlan stackelberg_defense(const cps::ImpactMatrix& im,
                                    const StackelbergConfig& config);

/// The follower's optimum against a given defense: impacts of defended
/// targets are scaled by (1 − mitigation), then the SA plans as usual.
AttackPlan follower_best_response(const cps::ImpactMatrix& im,
                                  const std::vector<bool>& defended,
                                  const AdversaryConfig& adversary,
                                  double mitigation);

}  // namespace gridsec::core
