// Divide-and-conquer strategic adversary (§II-E4).
//
// "The SA model can become computationally difficult to solve as the
// system grows in both the number of actors and targets. This problem can
// be alleviated to some extent by partitioning the system and actors into
// a divide-and-conquer algorithm."
//
// The impact matrix induces a bipartite interaction graph between targets
// and actors (target t touches actor a iff IM[a,t] != 0). Its connected
// components are economically independent: no actor spans two components,
// so the SA objective is additive across them. plan_partitioned solves each
// component independently for every affordable cardinality 0..K and
// recombines with a dynamic program over (component, targets-used) — exact
// under uniform attack costs, and an upper-bounded heuristic otherwise.
#pragma once

#include <vector>

#include "gridsec/core/adversary.hpp"

namespace gridsec::core {

struct ImpactPartition {
  /// component_of_target[t] / component_of_actor[a]; -1 for isolated
  /// entries (targets with all-zero columns never matter to the SA).
  std::vector<int> component_of_target;
  std::vector<int> component_of_actor;
  int num_components = 0;

  [[nodiscard]] std::vector<int> targets_in(int component) const;
  [[nodiscard]] std::vector<int> actors_in(int component) const;
};

/// Connected components of the target-actor interaction graph. Entries of
/// magnitude <= tol count as "no interaction".
ImpactPartition partition_impact(const cps::ImpactMatrix& im,
                                 double tol = 1e-9);

/// Divide-and-conquer SA plan: exact (equal to plan()) when attack costs
/// are uniform and the budget constraint reduces to the cardinality cap.
/// Requires config.max_targets >= 0.
AttackPlan plan_partitioned(const cps::ImpactMatrix& im,
                            const AdversaryConfig& config);

}  // namespace gridsec::core
