// Repeated attack-defense rounds with defender learning.
//
// The paper's game is one-shot: the defender estimates Pa once from its SA
// model and invests. In practice attacks recur, and each observed attack is
// evidence about the adversary's targeting. This module iterates the game:
// every round the SA plans on its (noisy) view and strikes; the defender
// blends its model-based Pa estimate with the empirical attack frequency
// observed so far (exponential smoothing) and re-invests its per-round
// budget. The traditional dependability model the paper wants to augment
// (§II-F4) emerges as the learning_rate → 1 limit: pure frequency-driven
// protection.
#pragma once

#include "gridsec/core/game.hpp"

namespace gridsec::core {

struct RepeatedGameConfig {
  GameConfig game;
  int rounds = 10;
  /// Pa blend per round: pa = (1-λ)·pa + λ·observed_frequency.
  double learning_rate = 0.3;
};

struct RoundOutcome {
  AttackPlan attack;
  DefensePlan defense;
  double adversary_gain = 0.0;     // realized, with the defense in place
  double defender_losses = 0.0;    // realized Σ negative actor impacts
};

struct RepeatedGameResult {
  std::vector<RoundOutcome> rounds;
  /// The defender's final blended attack-probability estimate.
  std::vector<double> final_pa;

  [[nodiscard]] double total_adversary_gain() const;
  [[nodiscard]] double total_defender_losses() const;
};

/// Plays `config.rounds` rounds. The ground-truth impact matrix is computed
/// once; the adversary redraws its noisy view every round; the defender's
/// Pa starts from its model-based estimate and is updated from observations.
StatusOr<RepeatedGameResult> play_repeated_game(
    const flow::Network& truth, const cps::Ownership& ownership,
    const RepeatedGameConfig& config, Rng& rng);

}  // namespace gridsec::core
