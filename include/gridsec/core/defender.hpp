// Defensive investment optimization (§II-F).
//
// Every actor is a defender that trades the cost of protecting an asset
// against the expected loss if it is attacked:
//   individual  (Eqs 12-14): each actor solves a 0/1 knapsack over its own
//                assets with its own budget MD(a);
//   collaborative (Eqs 15-18): actors that are *all hurt* by a target
//                (the valid cooperating-defender set CD(t)) share its
//                defense cost proportionally to their impacts, and a joint
//                optimization picks the defended set under per-actor
//                budget constraints on the shares.
//
// Attack probabilities Pa come from the defender's own model of the
// strategic adversary: estimate_attack_probabilities runs the SA
// optimization on the defender's (noisy) view repeatedly, each time with a
// fresh speculation of the adversary's knowledge noise, and reports the
// empirical attack frequency per target (§II-F2).
#pragma once

#include <vector>

#include "gridsec/core/adversary.hpp"
#include "gridsec/cps/impact.hpp"
#include "gridsec/cps/ownership.hpp"
#include "gridsec/cps/perturbation.hpp"

namespace gridsec::core {

struct DefenderConfig {
  /// Cost of defending each target, Cd(t). Required (sized to targets).
  std::vector<double> defense_cost;
  /// Defense budget MD(a) per actor. Required (sized to actors).
  std::vector<double> budget;
  /// Probability an attack on t succeeds, Ps(t) — the paper's decision
  /// rule is "defend when Ps·Pa·I > Cd". Empty = all one.
  std::vector<double> success_prob;
};

struct DefensePlan {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  std::vector<bool> defended;  // D(t) per target
  /// Eq 12 / Eq 16 objective value at the optimum.
  double objective = 0.0;
  /// Total defense spending per actor (their cost shares).
  std::vector<double> spending;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
  [[nodiscard]] int num_defended() const;
};

/// Individual defense (Eqs 12-14): each actor independently protects its own
/// assets. `pa[t]` is the (shared) estimated attack probability; `im` is the
/// impact matrix *as the defender sees it* (pass a noisy one for §II-F2).
DefensePlan defend_individual(const cps::ImpactMatrix& im,
                              const cps::Ownership& ownership,
                              const std::vector<double>& pa,
                              const DefenderConfig& config);

/// Per-actor-belief variant: actor a uses pa_per_actor[a] as its attack
/// probabilities (the paper's Pa(a,t)); combine with a composite impact
/// matrix whose row a carries actor a's own noisy beliefs to model fully
/// independent defender information.
DefensePlan defend_individual(
    const cps::ImpactMatrix& im, const cps::Ownership& ownership,
    const std::vector<std::vector<double>>& pa_per_actor,
    const DefenderConfig& config);

/// Collaborative defense (Eqs 15-18): cost sharing within each target's
/// cooperating-defender set CD(t) = {a : IM[a,t] < 0}, joint MILP across all
/// targets with per-actor budgets on the shares. `pa_per_actor[a][t]` lets
/// each defender hold its own attack-probability belief (Pa(a,t)); pass one
/// row to share a belief.
DefensePlan defend_collaborative(
    const cps::ImpactMatrix& im, const cps::Ownership& ownership,
    const std::vector<std::vector<double>>& pa_per_actor,
    const DefenderConfig& config);

/// Convenience overload with a shared Pa vector.
DefensePlan defend_collaborative(const cps::ImpactMatrix& im,
                                 const cps::Ownership& ownership,
                                 const std::vector<double>& pa,
                                 const DefenderConfig& config);

/// The defender's model of the adversary (§II-F2): runs the SA plan on
/// `defender_view` repeatedly — each sample re-perturbs the view with the
/// defender's speculation of the adversary's knowledge noise
/// (`speculated_noise`) — and returns the per-target empirical attack
/// frequency. One sample with zero speculated noise reproduces the
/// deterministic SA prediction.
StatusOr<std::vector<double>> estimate_attack_probabilities(
    const flow::Network& defender_view, const cps::Ownership& ownership,
    const AdversaryConfig& adversary, const cps::NoiseSpec& speculated_noise,
    int num_samples, Rng& rng, const cps::ImpactOptions& impact_options = {});

}  // namespace gridsec::core
