// The full attack–defense evaluation loop used by Experiment 3 (§III-D).
//
// One game round:
//  1. the defender observes the ground truth through knowledge noise σ_d,
//     computes its impact matrix I′, and estimates attack probabilities by
//     simulating the adversary on I″ (its speculation of the SA's view);
//  2. the defender invests (individually per Eqs 12-14, or collaboratively
//     per Eqs 15-18) under its budgets;
//  3. the actual strategic adversary plans its attack on its own noisy view
//     of the system;
//  4. the attack is executed against the ground truth; defended targets
//     have their effect reduced by the mitigation factor (1.0 = a defended
//     asset cannot be disrupted, the paper's binary D(t) reading).
//
// The headline metric is the paper's defense effectiveness: the adversary's
// realized gain with no defense minus its gain against the optimized
// defense.
#pragma once

#include "gridsec/core/adversary.hpp"
#include "gridsec/core/defender.hpp"

namespace gridsec::core {

struct GameConfig {
  AdversaryConfig adversary;
  DefenderConfig defender;
  /// Defender's knowledge noise about the ground truth (σ_d in Fig 5/6).
  cps::NoiseSpec defender_noise;
  /// Defender's speculation of the adversary's knowledge noise (§II-F2).
  cps::NoiseSpec speculated_adversary_noise;
  /// The actual adversary's knowledge noise.
  cps::NoiseSpec adversary_noise;
  /// Samples used for the empirical attack-probability estimate.
  int pa_samples = 1;
  /// Collaborative (Eqs 15-18) vs individual (Eqs 12-14) defense.
  bool collaborative = false;
  /// Fraction of an attack's effect removed on a defended target.
  double mitigation = 1.0;
  /// When true, every defender draws its *own* noisy view of the system
  /// and its own attack-probability estimate (the paper's per-defender
  /// Pa(a,t) and limited-information I′, §II-F2). Costs one impact matrix
  /// and one Pa estimation per actor per game; defaults to a single shared
  /// view for speed.
  bool per_defender_views = false;
  cps::ImpactOptions impact;
};

struct GameOutcome {
  AttackPlan attack;
  DefensePlan defense;
  std::vector<double> pa;  // the defender's attack-probability estimate
  /// SA's realized gain on the ground truth with no defense in place.
  double adversary_gain_undefended = 0.0;
  /// SA's realized gain when the defense plan mitigates defended targets.
  double adversary_gain_defended = 0.0;
  /// The paper's Fig 5 metric: gain_undefended − gain_defended.
  double defense_effectiveness = 0.0;
  /// Realized per-actor profit change (ground truth) without / with defense.
  std::vector<double> actor_impact_undefended;
  std::vector<double> actor_impact_defended;

  /// Total realized losses across actors (sum of negative impacts).
  [[nodiscard]] double total_loss_undefended() const;
  [[nodiscard]] double total_loss_defended() const;
};

/// Plays one round. `rng` drives all three noise draws (defender view,
/// speculated views, adversary view); pass derived per-trial streams for
/// reproducible Monte Carlo.
StatusOr<GameOutcome> play_defense_game(const flow::Network& truth,
                                        const cps::Ownership& ownership,
                                        const GameConfig& config, Rng& rng);

/// Evaluates an attack plan against a ground-truth impact matrix with a
/// defense in place: each target's effect is scaled by (1 − mitigation)
/// when defended. Returns the SA's gain; fills per-actor impacts if
/// `actor_impact` is non-null (all actors, not only the SA's set).
double evaluate_attack_with_defense(const cps::ImpactMatrix& truth,
                                    const AttackPlan& plan,
                                    const AdversaryConfig& adversary,
                                    const std::vector<bool>& defended,
                                    double mitigation,
                                    std::vector<double>* actor_impact);

}  // namespace gridsec::core
