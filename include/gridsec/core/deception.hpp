// Deception as a defense (the paper's Figure-4 discussion).
//
// "This suggests a viable defense policy — deception, specifically, making
// the attacker think that he knows the protected system better than he
// does in practice. Then, the attacker may be willing to expend greater
// resources only to realize after launching the attack that he obtained
// diminished returns."
//
// This module operationalizes that: the defenders publish falsified values
// for selected asset parameters (capacity inflation/deflation of specific
// edges). The adversary plans on the falsified view with full confidence;
// the plan is then realized against the truth. evaluate_deception scores a
// misreport set by the SA's realized return (lower is better for the
// defenders) and the defenders' realized losses; greedy_deception_plan
// picks the k most effective single-edge misreports.
#pragma once

#include <vector>

#include "gridsec/core/adversary.hpp"
#include "gridsec/cps/impact.hpp"
#include "gridsec/cps/ownership.hpp"

namespace gridsec::core {

struct Misreport {
  flow::EdgeId edge = -1;
  /// Published capacity = true capacity · factor (e.g. 0.5 hides half the
  /// line; 2.0 overstates it).
  double capacity_factor = 1.0;
};

struct DeceptionOutcome {
  AttackPlan attack;          // what the deceived SA chooses
  double anticipated = 0.0;   // SA's expectation on the falsified view
  double realized = 0.0;      // SA's actual return on the truth
  double defender_losses = 0.0;  // Σ negative actor impacts, realized
};

/// Evaluates one misreport set: the SA plans on truth ⊕ misreports and is
/// scored on truth.
StatusOr<DeceptionOutcome> evaluate_deception(
    const flow::Network& truth, const cps::Ownership& ownership,
    std::span<const Misreport> misreports, const AdversaryConfig& adversary,
    const cps::ImpactOptions& impact_options = {});

struct DeceptionPlanOptions {
  /// How many edges may be misreported.
  int max_misreports = 3;
  /// Candidate publication factors tried per edge.
  std::vector<double> factors{0.25, 4.0};
  AdversaryConfig adversary;
  cps::ImpactOptions impact;
};

struct DeceptionPlan {
  std::vector<Misreport> misreports;
  DeceptionOutcome baseline;  // SA against the honest system
  DeceptionOutcome deceived;  // SA against the final misreported view
};

/// Greedy construction: repeatedly add the single-edge misreport that most
/// reduces the defenders' realized losses; stops when no candidate improves
/// or the budget is reached. O(max_misreports · edges · factors) SA solves —
/// intended for the ~60-asset scenario scale.
StatusOr<DeceptionPlan> greedy_deception_plan(
    const flow::Network& truth, const cps::Ownership& ownership,
    const DeceptionPlanOptions& options);

}  // namespace gridsec::core
