// The strategic adversary (§II-E): selects a set of targets to attack and a
// set of actors whose profit swings she monetizes, maximizing expected
// return under an attack budget (Eqs 8-11).
//
// Given a target set T, the optimal actor set is analytic: include actor j
// iff its aggregate swing Σ_{i∈T} IM[j,i]·Ps(i) is positive. The objective
// therefore collapses to
//   f(T) = Σ_j max(0, Σ_{i∈T} v_ij) − Σ_{i∈T} Catk(i),   v_ij = IM[j,i]·Ps(i)
// and plan() solves max f(T) by a specialized exact branch-and-bound over
// targets: candidates are sorted by their standalone worth
// w_i = Σ_j max(0, v_ij) − Catk(i) (targets with w_i ≤ 0 can never help —
// max(0, a+b) ≤ max(0,a) + max(0,b) bounds their marginal contribution by
// w_i), and the same subadditivity gives the pruning bound
//   f(S) ≤ f(T) + Σ of the top (K−|T|) positive w_i still available.
// A node budget guards pathological dense instances; on exhaustion the
// incumbent (never worse than greedy) is returned with kIterationLimit.
//
// Alternative solvers for validation and ablation: plan_milp() — the Eq 8-11
// program linearized with per-actor gates u_j ≤ B_j·A_j,
// u_j ≤ Σ_i v_ij·T_i + M_j(1−A_j) and binary A (exact but slower on dense
// matrices); plan_enumerate() — exhaustive subsets; plan_greedy() — the
// marginal-gain heuristic.
#pragma once

#include <vector>

#include "gridsec/cps/impact.hpp"
#include "gridsec/lp/milp.hpp"

namespace gridsec::core {

struct AdversaryConfig {
  /// Expected cost to attack each target, Catk(t). Empty = all zero.
  std::vector<double> attack_cost;
  /// Probability an attack on t succeeds, Ps(t). Empty = all one.
  std::vector<double> success_prob;
  /// Attack budget MA (Eq 11).
  double budget = lp::kInfinity;
  /// Optional cardinality cap on |T| (the paper's experiments use 6 with
  /// uniform costs). Negative = unlimited.
  int max_targets = -1;
  /// Search-node budget for plan(); exhausted => kIterationLimit with the
  /// best incumbent found (still a valid, feasible attack).
  long max_nodes = 5'000'000;
  /// Wall-clock budget for plan() / plan_milp() in milliseconds; 0 = no
  /// limit. Expiry => kTimeLimit with the best incumbent found (feasible,
  /// not proven optimal).
  double time_limit_ms = 0.0;
};

struct AttackPlan {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  std::vector<int> targets;  // T: asset ids the SA disrupts
  std::vector<int> actors;   // A: actors whose positions the SA takes
  /// Expected return anticipated by the SA on the impact matrix it was
  /// given (Eq 8's objective value).
  double anticipated_return = 0.0;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
  [[nodiscard]] bool attacks(int target) const;
};

class StrategicAdversary {
 public:
  explicit StrategicAdversary(AdversaryConfig config = {})
      : config_(std::move(config)) {}

  [[nodiscard]] const AdversaryConfig& config() const { return config_; }

  /// Exact plan via the specialized branch-and-bound (see file comment).
  /// `im` is the SA's view of the system — pass a noise-perturbed matrix to
  /// model limited knowledge (§II-D4). status == kIterationLimit means the
  /// node budget ran out; the returned plan is feasible but not proven
  /// optimal.
  [[nodiscard]] AttackPlan plan(const cps::ImpactMatrix& im) const;

  /// Exact plan via the linearized Eq 8-11 MILP; slower on dense matrices,
  /// kept for cross-validation and the solver-ablation bench.
  [[nodiscard]] AttackPlan plan_milp(const cps::ImpactMatrix& im) const;

  /// Exact plan via exhaustive subset enumeration. Exponential; intended
  /// for validation on systems with ~<= 20 candidate targets (targets with
  /// no positive impact on any actor are pruned first).
  [[nodiscard]] AttackPlan plan_enumerate(const cps::ImpactMatrix& im) const;

  /// Greedy heuristic: repeatedly add the target with the best marginal
  /// return. Fast; can be suboptimal when gains interact through A.
  [[nodiscard]] AttackPlan plan_greedy(const cps::ImpactMatrix& im) const;

 private:
  /// Objective value of a fixed target set with optimally chosen actors.
  [[nodiscard]] double evaluate_target_set(
      const cps::ImpactMatrix& im, const std::vector<int>& targets,
      std::vector<int>* best_actors) const;

  AdversaryConfig config_;
};

/// Baseline non-strategic attacker: draws up to max_targets targets
/// uniformly at random (respecting the budget), then takes actor positions
/// optimally for that set. The gap to StrategicAdversary::plan quantifies
/// the value of strategic target selection (see micro_ablation).
AttackPlan random_attack_plan(const cps::ImpactMatrix& im,
                              const AdversaryConfig& config, Rng& rng);

/// The return the SA actually realizes when the plan (chosen on a possibly
/// noisy view) is executed against the ground truth. Uses the paper's
/// linear-additivity approximation: Σ_{i∈T} (−Catk(i) + Σ_{j∈A}
/// IM_truth[j,i]·Ps(i)).
double realized_return(const cps::ImpactMatrix& truth,
                       const AttackPlan& plan, const AdversaryConfig& config);

/// Non-additive variant: applies all attacks in the plan to the ground
/// truth network at once, re-solves, and credits the SA with the joint
/// profit swing of its actor set (minus attack costs). Quantifies the
/// sub/supermodularity the paper's linear approximation ignores.
StatusOr<double> realized_return_joint(const flow::Network& truth_net,
                                       const cps::Ownership& ownership,
                                       const AttackPlan& plan,
                                       const AdversaryConfig& config,
                                       const cps::ImpactOptions& options = {});

}  // namespace gridsec::core
