// Numerical-recovery ladder for LP solves (gridsec::robust::recovery).
//
// A solve that ends in SolveStatus::kNumericalError on *valid* input is a
// conditioning problem, not a modelling problem — the instance usually has
// a certified optimum that a differently-conditioned solve path can reach.
// This module packages those alternate paths as a declarative escalation
// ladder:
//
//   kWarm          the original warm-started attempt (recorded, not re-run)
//   kRepairedBasis retry from a repaired basis: keep the variable statuses,
//                  reset every row status to slack-basic — discards the part
//                  of a stale basis that most often goes rank-deficient
//   kCold          plain cold start (recorded when the solver already tried
//                  its built-in warm→cold retry)
//   kBland         cold start with Bland's rule from the first pivot —
//                  slow, cycling-proof, numerically boring
//   kEquilibrated  Ruiz-equilibrate (power-of-two factors), solve the
//                  scaled problem cold, unscale exactly
//   kPerturbed     bounded cost perturbation: jitter objective coefficients
//                  by a relative 1e-7, solve cold, then REMOVE the
//                  perturbation by warm-starting the original problem from
//                  the perturbed optimal basis — the certified answer is
//                  always for the original costs
//
// A rung's answer is accepted only when the solve reports kOptimal AND
// obs::certify() verifies it against the ORIGINAL problem (relaxation
// mode: recovery runs beneath MILP nodes too). Every attempt — including
// the failed ones — is recorded in Solution::recovery_trail, which flows
// into audit bundles, the JSONL log, and `gridsec-inspect`.
//
// Two ways in:
//   * solve_with_recovery() — explicit call, runs the given policy.
//   * install_recovery() — registers the lp::RecoveryHook so EVERY
//     SimplexSolver::solve in the process (direct LP solves, MILP
//     branch-and-bound node relaxations, compute_impact_matrix, the
//     adversary/defender/game loops, Monte-Carlo trials) escalates
//     automatically when it hits kNumericalError. The hook re-enters the
//     solver; a thread-local guard makes the inner rung solves immune to
//     re-triggering.
//
// The ladder is OFF the clean-solve hot path: it only runs after a
// kNumericalError verdict, which clean instances never produce.
// See docs/robustness.md#numerical-recovery.
#pragma once

#include <string_view>
#include <vector>

#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"

namespace gridsec::robust {

/// One escalation step of the recovery ladder, ordered cheap → drastic.
enum class RecoveryRung {
  kWarm,           // the original warm-started attempt (bookkeeping only)
  kRepairedBasis,  // warm basis with all row statuses reset to slack-basic
  kCold,           // plain cold start
  kBland,          // cold + Bland's rule from the first pivot
  kEquilibrated,   // Ruiz-equilibrated re-solve, exactly unscaled
  kPerturbed,      // jittered costs, then perturbation removed via warm start
};

/// Stable lower_snake name ("warm", "repaired_basis", ...) — this is the
/// string recorded in recovery trails, metrics and audit bundles.
std::string_view to_string(RecoveryRung rung);

/// Declarative recovery configuration: which rungs run, in which order.
struct RecoveryPolicy {
  /// Master switch; off() returns a policy with enabled = false.
  bool enabled = true;
  /// Rungs tried in order until one produces a certified optimum.
  std::vector<RecoveryRung> rungs;
  /// Relative cost-jitter magnitude for kPerturbed (see jitter_costs).
  double perturbation_scale = 1e-7;

  /// The full default ladder: repaired basis → cold → Bland →
  /// equilibrated → perturbed. (kWarm/kCold entries that the solver
  /// already attempted are recorded in the trail without re-running.)
  static RecoveryPolicy ladder();
  /// Recovery disabled: solve_with_recovery degrades to a plain solve and
  /// install_recovery(off()) parks the hook in a pass-through state.
  static RecoveryPolicy off();
};

/// Solves `problem`, escalating through `policy` when the initial solve
/// ends in kNumericalError — or claims kOptimal but fails scale-invariant
/// certification (obs::certify against the original AND the equilibrated
/// problem; a pathologically scaled row can hide violations below the
/// relative tolerances on the original data alone, so certification-failed
/// "optima" are treated as numerical failures and escalate too). A rung's
/// answer is accepted only under the same scale-invariant certificate.
/// The returned Solution carries the rung-by-rung
/// recovery_trail whenever the ladder engaged (even if every rung failed —
/// the final status is then the original failure). Rungs that need a warm
/// basis (kWarm, kRepairedBasis) are skipped when options.warm_start is
/// empty. Invalid input (validate_problem failure) is never "recovered":
/// the rejection verdict is returned as-is.
[[nodiscard]] lp::Solution solve_with_recovery(
    const lp::Problem& problem, const lp::SimplexOptions& options = {},
    const RecoveryPolicy& policy = RecoveryPolicy::ladder());

/// Installs the process-global lp::RecoveryHook with `policy`. Every
/// subsequent solve that ends in kNumericalError (after the solver's own
/// warm→cold retry) runs the ladder in place. Re-installing replaces the
/// policy. Thread-safe; the hook itself is re-entrancy-guarded.
void install_recovery(const RecoveryPolicy& policy = RecoveryPolicy::ladder());
/// Uninstalls the hook (solves fail plainly again).
void uninstall_recovery();
/// True when the hook is installed (even with an off() policy).
[[nodiscard]] bool recovery_installed();

/// Process-global runtime toggle consulted by the installed hook — the
/// `gridsec_cli --recovery=off` escape hatch. Leaves the hook installed.
void set_recovery_enabled(bool enabled);
[[nodiscard]] bool recovery_enabled();

/// RAII: suppresses the installed recovery hook on the CURRENT THREAD for
/// its lifetime. The differential fuzzer uses this to measure how an
/// instance fares *without* the ladder while other threads keep theirs.
class ScopedRecoveryDisable {
 public:
  ScopedRecoveryDisable();
  ~ScopedRecoveryDisable();
  ScopedRecoveryDisable(const ScopedRecoveryDisable&) = delete;
  ScopedRecoveryDisable& operator=(const ScopedRecoveryDisable&) = delete;
};

}  // namespace gridsec::robust
