// Seeded fault injection and differential fuzzing for the solver stack.
//
// FaultInjector perturbs well-formed lp::Problems and flow::Networks into
// the pathological states the guardrails are supposed to absorb: NaN/Inf
// costs, zero or (semantically) negative capacities, disconnected hubs,
// degenerate cost ties, and extreme coefficient ranges. Every injection is
// driven by an explicit seed, so a failing fuzz instance reproduces from
// its seed alone.
//
// run_differential_fuzz() is the harness: it generates seeded random
// instances, optionally injects faults, and cross-checks independent
// solution paths against each other —
//   * hardened SimplexSolver vs. solve_lp_with_presolve on the same LP
//     (verdict classes must agree; optimal objectives must match),
//   * StrategicAdversary::plan / plan_milp vs. the brute-force
//     plan_enumerate on small impact matrices,
//   * Network::validate vs. solve_social_welfare on faulted grids (invalid
//     data must surface as a typed status, never a crash),
//   * warm-started vs. cold SimplexSolver: re-solving a problem from its
//     own optimal basis, and a jittered sibling from the now-stale basis,
//     must reproduce the cold verdict and objective.
// Any disagreement is recorded as a failure with the instance seed; the
// acceptance bar is hundreds of seeded instances with zero failures under
// ASan/UBSan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/lp/problem.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::robust {

enum class FaultKind {
  kNanCost,           // objective / edge cost <- NaN
  kInfCost,           // objective / edge cost <- +/-Inf
  kZeroCapacity,      // variable fixed at its lower bound / edge capacity 0
  kNegativeCapacity,  // edge capacity < 0; LP analogue: a row demanding a
                      // nonnegative quantity stay below a negative rhs
  kDisconnectedHub,   // all edges incident to one hub zeroed out
  kDegenerateTies,    // two costs made exactly equal (pivot/argmax ties)
  kExtremeRange,      // coefficients rescaled by ~1e9 (conditioning stress)
  // Numerical-stress kinds (LP only; not in the classic random rotation —
  // the stress_numerics fuzz leg draws them from its own pool so legacy
  // fuzz streams stay bit-identical):
  kExtremeDynamicRange,    // rows/objective rescaled by 2^±30: ~1e18 of
                           // dynamic range inside one tableau
  kNearDegenerateScaling,  // one row scaled to ~1e-12, parking its pivots
                           // at the factorization's pivot tolerance
  kBasisDrift,             // near-duplicate of an existing row (relative
                           // 1e-12 perturbation): invites singular bases
                           // and eta-chain drift
};

std::string_view to_string(FaultKind kind);

/// What a sequence of inject() calls actually changed.
struct FaultReport {
  std::vector<FaultKind> applied;

  [[nodiscard]] bool has(FaultKind kind) const;
  /// True when NaN/Inf data was injected — solvers must answer
  /// kNumericalError, and Network::validate must reject.
  [[nodiscard]] bool poisons_data() const {
    return has(FaultKind::kNanCost) || has(FaultKind::kInfCost);
  }
  /// True when the network can no longer pass validate() for structural
  /// reasons (negative capacity).
  [[nodiscard]] bool breaks_network_domain() const {
    return poisons_data() || has(FaultKind::kNegativeCapacity);
  }
};

std::string to_string(const FaultReport& report);

/// Deterministic fault source: same seed, same target, same call sequence
/// => identical faults. Each inject() returns whether the kind applies to
/// that target (e.g. kDisconnectedHub is meaningless for a bare LP).
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Applied faults are logged (kind + injector seed) so a failed solve's
  /// audit bundle shows what was done to the instance and how to redo it.
  bool inject(lp::Problem& p, FaultKind kind);
  bool inject(flow::Network& net, FaultKind kind);

  /// Draws `count` kinds uniformly and applies each; reports what stuck.
  FaultReport inject_random(lp::Problem& p, int count);
  FaultReport inject_random(flow::Network& net, int count);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  bool do_inject(lp::Problem& p, FaultKind kind);
  bool do_inject(flow::Network& net, FaultKind kind);

  std::uint64_t seed_;
  Rng rng_;
};

/// Multiplicative jitter on every objective coefficient (or edge cost):
/// c <- c * (1 + rel_scale * u), u ~ U(-1, 1). The retry policy in
/// run_trials_robust uses this to break degenerate ties / conditioning
/// issues on a numerically failed trial without changing the economics
/// beyond O(rel_scale).
void jitter_costs(lp::Problem& p, Rng& rng, double rel_scale = 1e-7);
void jitter_costs(flow::Network& net, Rng& rng, double rel_scale = 1e-7);

struct FuzzOptions {
  /// Number of seeded instances per leg (LP, adversary, network, warm).
  int instances = 500;
  std::uint64_t seed = 0xFA017ULL;
  /// Probability an instance receives injected faults at all.
  double fault_prob = 0.6;
  /// Faults drawn per faulted instance (kinds may repeat).
  int max_faults = 2;
  /// Per-solve wall-clock guardrail handed to the simplex options.
  double time_limit_ms = 2000.0;
  /// Objective agreement tolerance for optimal-vs-optimal cross-checks.
  double objective_tol = 1e-6;
  /// Enables the numerical-stress leg: instances faulted with the
  /// kExtremeDynamicRange / kNearDegenerateScaling / kBasisDrift pool,
  /// solved three ways — a cold Bland's-rule reference, a plain solve
  /// with recovery suppressed, and solve_with_recovery() — and
  /// cross-checked: every certified optimum must match the reference.
  /// Off by default; drawn from an independent seed stream, so enabling
  /// it never perturbs the four classic legs.
  bool stress_numerics = false;
};

struct FuzzStats {
  int instances = 0;         // total instances exercised across all legs
  int faulted = 0;           // instances that received injected faults
  int lp_checks = 0;         // simplex-vs-presolve comparisons run
  int adversary_checks = 0;  // plan/plan_milp-vs-enumerate comparisons run
  int network_checks = 0;    // validate-vs-solve pipeline probes run
  int warm_checks = 0;       // warm-vs-cold simplex comparisons run
  int recovery_checks = 0;   // stress-leg instances with a certified oracle
  /// Stress-leg instances the plain (recovery-suppressed) solve failed to
  /// certify — the denominator of the ladder's resolution rate.
  int recovery_failed_plain = 0;
  /// Of those, how many the recovery ladder brought back to a certified
  /// optimum matching the reference (acceptance bar: >= 80%).
  int recovery_resolved = 0;
  /// Tally of final solve statuses seen, keyed by lp::to_string(status).
  std::vector<std::pair<std::string, int>> status_counts;
  /// Human-readable disagreement diagnostics (each includes the seed).
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

std::string to_string(const FuzzStats& stats);

/// Runs the full differential harness. Deterministic in options.seed.
FuzzStats run_differential_fuzz(const FuzzOptions& options = {});

}  // namespace gridsec::robust
