// Text serialization for networks and ownership maps.
//
// A line-oriented format, one declaration per line, '#' comments:
//
//   hub    <name>
//   supply <name> <hub> <capacity> <unit_cost> [loss]
//   demand <name> <hub> <capacity> <unit_price> [loss]
//   edge   <name> <from_hub> <to_hub> <capacity> <cost> [loss]
//   conv   <name> <from_hub> <to_hub> <capacity> <cost> [loss]
//   owner  <edge_name> <actor_index>
//
// Hubs are referenced by name; supply/demand terminals are implicit (the
// helpers create them). Written files round-trip: parse(write(net)) == net
// up to terminal naming.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::flow {

/// Writes `net` (and optionally per-edge owners) in the text format.
void write_network(std::ostream& os, const Network& net,
                   std::span<const int> owners = {});

std::string to_text(const Network& net, std::span<const int> owners = {});

struct ParsedNetwork {
  Network network;
  /// Per-edge owners; -1 where no `owner` line was given. Empty if the
  /// file declared no owners at all.
  std::vector<int> owners;
};

/// Parses the text format. Returns kInvalidArgument with a line-numbered
/// message on malformed input.
StatusOr<ParsedNetwork> parse_network(std::istream& is);
StatusOr<ParsedNetwork> parse_network_text(const std::string& text);

/// Convenience file wrappers.
Status write_network_file(const std::string& path, const Network& net,
                          std::span<const int> owners = {});
StatusOr<ParsedNetwork> read_network_file(const std::string& path);

}  // namespace gridsec::flow
