// Structural (graph-topological) vulnerability analysis.
//
// The paper's related work contrasts pure graph metrics for grid
// vulnerability ([32]: electrical betweenness) with flow-based analysis and
// cites the critique that topology alone is a poor proxy ([33], Hines et
// al.). This module provides the topological side so the two can be
// compared quantitatively against gridsec's economic impact ranking (see
// bench/ext_topology_vs_impact):
//
//  * source-sink shortest-path betweenness per edge — the fraction of
//    shortest source→sink routes crossing each asset (directed, unweighted);
//  * connectivity / reachability of consumers from producers;
//  * max deliverable energy per demand edge (LP-based deliverability).
#pragma once

#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/flow/social_welfare.hpp"

namespace gridsec::flow {

/// For every edge: Σ over (source terminal, sink terminal) pairs of the
/// fraction of shortest directed paths that use the edge. Unweighted hops;
/// supply/demand edges participate as the path's first/last hop.
std::vector<double> source_sink_betweenness(const Network& net);

/// True iff every sink terminal is reachable (directed) from at least one
/// source terminal.
bool all_consumers_reachable(const Network& net);

/// Max energy deliverable to one demand edge, ignoring prices: maximizes
/// that edge's delivered flow subject to capacities and lossy conservation
/// (all other demand edges closed). Status mirrors the LP solve.
StatusOr<double> max_deliverable(const Network& net, EdgeId demand_edge);

}  // namespace gridsec::flow
