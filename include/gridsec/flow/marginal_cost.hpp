// The paper's literal marginal-cost probe (§II-D2, first listing).
//
// "The marginal cost is calculated by fixing the flows for each actor ...
// and reducing the capacity of each positive-flow edge by one unit. The
// reduction in utility is the corresponding marginal cost."
//
// probe_capacity_rents implements exactly that finite difference per edge.
// LP duality says what it converges to: for an edge saturated at capacity,
// the rate of welfare loss per unit of capacity removed equals the negated
// reduced cost of its flow variable (the capacity shadow price / congestion
// rent); for an unsaturated edge it is zero while the slack lasts. The test
// suite verifies both identities, making this module the bridge between the
// paper's numerical recipe and the dual-based allocator.
#pragma once

#include <vector>

#include "gridsec/flow/social_welfare.hpp"

namespace gridsec::flow {

struct CapacityRent {
  double marginal_value = 0.0;  // welfare lost per unit of capacity removed
  bool saturated = false;       // edge was at capacity in the base optimum
};

struct CapacityProbeOptions {
  /// Capacity reduction per probe ("one unit" in the paper); relative
  /// probes scale by each edge's capacity instead.
  double delta = 1.0;
  bool relative = false;
  /// Edges with base flow below this carry no rent and are skipped.
  double flow_tol = 1e-9;
  SocialWelfareOptions welfare;
};

/// One LP re-solve per positive-flow edge. Requires `base` to be the
/// optimal solution of `net`.
StatusOr<std::vector<CapacityRent>> probe_capacity_rents(
    const Network& net, const FlowSolution& base,
    const CapacityProbeOptions& options = {});

}  // namespace gridsec::flow
