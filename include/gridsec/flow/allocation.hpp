// Multi-actor profit division (§II-D2 of the paper).
//
// The flows are fixed at the social-welfare optimum (the paper's
// coalition-proof assumption); only the system profit has to be divided.
// Competition is priced at the "cost of the alternative" — the marginal
// cost at each point in the system. Two interchangeable implementations:
//
//  * kLmp          — exact: node prices are the hub-conservation duals
//                    (locational marginal prices) from the LP.
//  * kPerturbation — paper-faithful: node prices are estimated numerically
//                    by injecting a small free supply at each hub and
//                    measuring the utility change (the paper's "reduce the
//                    capacity ... the reduction in utility is the marginal
//                    cost" probe, applied at hubs).
//
// Given node prices λ (zero at terminals), each edge's competitive profit is
//   profit(e) = λ_to·f − λ_from·f/(1−loss) − cost·f ,
// which telescopes so that Σ_e profit(e) = social welfare exactly; actor
// profit is the sum over owned edges. Degenerate duals (ties between
// competitors in series) are the case the paper's iterative 1/N-sharing
// algorithm targets; see series.hpp for that procedure.
#pragma once

#include <span>
#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/flow/social_welfare.hpp"

namespace gridsec::flow {

enum class AllocatorKind { kLmp, kPerturbation };

struct AllocationOptions {
  AllocatorKind kind = AllocatorKind::kLmp;
  /// Probe size for the perturbation allocator, as a fraction of the mean
  /// positive flow (floored at an absolute minimum internally).
  double probe_fraction = 1e-4;
  SocialWelfareOptions welfare;
  /// Warm-start basis for the base welfare solve, typically
  /// AllocationResult::basis from a structurally identical network (e.g.
  /// the unattacked base model when sweeping attack targets). Takes
  /// precedence over welfare.simplex.warm_start when non-empty.
  lp::Basis warm_start;
  /// Optional shared welfare model: when set, the base welfare solve
  /// refreshes this model in place instead of rebuilding the LP (identical
  /// results; see SocialWelfareModel). Sweep loops that call
  /// allocate_profits per scenario on one topology point this at a model
  /// that outlives the loop. The perturbation allocator's probe solves
  /// never touch it (each probe is a different topology). Not owned; the
  /// caller keeps it alive and does not share it across threads.
  SocialWelfareModel* model = nullptr;
};

struct AllocationResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double welfare = 0.0;
  std::vector<double> flow;         // delivered flow per edge
  std::vector<double> node_price;   // λ used for the division
  std::vector<double> edge_profit;  // competitive profit per edge
  std::vector<double> actor_profit; // per actor; empty when owners empty
  /// Basis of the base welfare solve; feed it into
  /// AllocationOptions::warm_start for sibling allocations.
  lp::Basis basis;
  /// True when the welfare solve needed the numerical-recovery ladder
  /// (see FlowSolution::recovered).
  bool recovered = false;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

/// Divides the social-welfare-optimal profit across edges (and actors when
/// `owners` is non-empty). `owners[e]` is the owning actor of edge e in
/// [0, num_actors); pass an empty span for edge-level results only.
AllocationResult allocate_profits(const Network& net,
                                  std::span<const int> owners,
                                  int num_actors,
                                  const AllocationOptions& options = {});

/// Computes per-edge profits from an existing flow solution and price
/// vector (shared by both allocators; exposed for tests).
std::vector<double> edge_profits_from_prices(
    const Network& net, std::span<const double> flow,
    std::span<const double> node_price);

/// Numerically estimates hub prices by free-injection probing (the
/// perturbation allocator's core). Returns one λ per node (0 at terminals).
/// Exposed for tests and the allocator-ablation bench.
StatusOr<std::vector<double>> probe_node_prices(
    const Network& net, const FlowSolution& base, double probe_fraction,
    const SocialWelfareOptions& options = {});

}  // namespace gridsec::flow
