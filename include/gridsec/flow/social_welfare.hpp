// Social-welfare optimal flow (paper Eqs 1-7).
//
// Builds the LP  min Σ a(u,v)·f(u,v)  over delivered flows with
//   0 ≤ f ≤ c               (Eq 2; variable bounds)
//   lossy conservation      (Eq 7; equality row per hub)
// Supply/demand caps (Eqs 5-6) are the capacity bounds of the supply and
// demand edges. Consumer revenue enters as negative cost, so the social
// welfare is the negated optimum: welfare = revenues − costs.
//
// The hub-conservation duals are the locational marginal prices (LMPs):
// node_price[h] is the system cost of delivering one extra unit at hub h.
#pragma once

#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"

namespace gridsec::flow {

struct FlowSolution {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  /// Social welfare = revenues − costs (maximized). Eq 1's "Utility" is the
  /// minimized Σ a·f, i.e. -welfare; we expose the economically intuitive
  /// sign and keep the mapping Impact = welfare' − welfare consistent.
  double welfare = 0.0;
  std::vector<double> flow;        // delivered flow per edge
  std::vector<double> node_price;  // LMP per node (0 at terminals)
  /// Reduced cost of each edge's flow variable: for an edge saturated at
  /// capacity this is -(marginal welfare of one more unit of capacity).
  std::vector<double> edge_reduced_cost;
  /// Final simplex basis of the welfare LP. Feed it back through
  /// SocialWelfareOptions::simplex.warm_start to hot-start the solve of a
  /// perturbed sibling network (same topology; changed capacities, costs
  /// or losses). Empty when the solve was not optimal.
  lp::Basis basis;
  /// True when the numerical-recovery ladder (robust::recovery, when
  /// installed) had to engage to produce this solution — the answer is
  /// certified, but the instance is numerically fragile.
  bool recovered = false;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

/// Options for the social-welfare solve.
struct SocialWelfareOptions {
  lp::SimplexOptions simplex;
};

/// Builds the Eq 1-7 LP for `net` (exposed for tests and the MILP layers).
lp::Problem build_social_welfare_lp(const Network& net);

/// A reusable social-welfare LP: the model that sweep loops (impact
/// matrices, Monte Carlo trials, game rounds) re-solve hundreds of times
/// against sibling networks that share one topology.
///
/// sync() points the model at a network. The first call — and any call
/// where the topology (node kinds, edge endpoints, edge names) changed —
/// builds the Eq 1-7 LP from scratch. Every other call refreshes the
/// capacities, costs and loss coefficients of the cached Problem in place
/// (zero heap allocations), exploiting the build's deterministic term
/// layout: each conservation row lists its hub's out-edges first, then its
/// in-edges. A refreshed model is value-identical to a fresh
/// build_social_welfare_lp of the same network, so solve results are
/// bit-identical either way.
///
/// Not thread-safe; give each worker its own model (see
/// util::WorkerScratch::slot).
class SocialWelfareModel {
 public:
  /// Builds or refreshes the cached LP for `net` (see class comment).
  void sync(const Network& net);

  /// The cached LP as of the last sync(). Empty before the first sync.
  [[nodiscard]] const lp::Problem& problem() const { return problem_; }

  /// Number of from-scratch builds performed (1 = refresh path has been
  /// hit ever since; exposed for tests and the allocation bench).
  [[nodiscard]] long rebuilds() const { return rebuilds_; }

 private:
  [[nodiscard]] bool topology_matches(const Network& net) const;
  void refresh(const Network& net);

  lp::Problem problem_;
  // Topology fingerprint captured at build time; a mismatch on any entry
  // forces a rebuild. Edge names are compared against the cached
  // Problem's variable names directly (no copy here).
  std::vector<int> edge_from_, edge_to_;
  std::vector<unsigned char> node_is_hub_;
  long rebuilds_ = 0;
};

/// Solves the social-welfare problem. status != kOptimal means the network
/// data is inconsistent (the LP is always feasible at f = 0 for validated
/// networks, so infeasibility indicates a modelling bug).
FlowSolution solve_social_welfare(const Network& net,
                                  const SocialWelfareOptions& options = {});

/// Model-reusing variant: identical results, but the LP is refreshed in
/// `model` instead of rebuilt — the per-solve model-construction
/// allocations (the dominant heap traffic of sweep loops) collapse to
/// zero once the model has seen the topology.
FlowSolution solve_social_welfare(const Network& net,
                                  SocialWelfareModel& model,
                                  const SocialWelfareOptions& options = {});

}  // namespace gridsec::flow
