// Social-welfare optimal flow (paper Eqs 1-7).
//
// Builds the LP  min Σ a(u,v)·f(u,v)  over delivered flows with
//   0 ≤ f ≤ c               (Eq 2; variable bounds)
//   lossy conservation      (Eq 7; equality row per hub)
// Supply/demand caps (Eqs 5-6) are the capacity bounds of the supply and
// demand edges. Consumer revenue enters as negative cost, so the social
// welfare is the negated optimum: welfare = revenues − costs.
//
// The hub-conservation duals are the locational marginal prices (LMPs):
// node_price[h] is the system cost of delivering one extra unit at hub h.
#pragma once

#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"

namespace gridsec::flow {

struct FlowSolution {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  /// Social welfare = revenues − costs (maximized). Eq 1's "Utility" is the
  /// minimized Σ a·f, i.e. -welfare; we expose the economically intuitive
  /// sign and keep the mapping Impact = welfare' − welfare consistent.
  double welfare = 0.0;
  std::vector<double> flow;        // delivered flow per edge
  std::vector<double> node_price;  // LMP per node (0 at terminals)
  /// Reduced cost of each edge's flow variable: for an edge saturated at
  /// capacity this is -(marginal welfare of one more unit of capacity).
  std::vector<double> edge_reduced_cost;
  /// Final simplex basis of the welfare LP. Feed it back through
  /// SocialWelfareOptions::simplex.warm_start to hot-start the solve of a
  /// perturbed sibling network (same topology; changed capacities, costs
  /// or losses). Empty when the solve was not optimal.
  lp::Basis basis;
  /// True when the numerical-recovery ladder (robust::recovery, when
  /// installed) had to engage to produce this solution — the answer is
  /// certified, but the instance is numerically fragile.
  bool recovered = false;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

/// Options for the social-welfare solve.
struct SocialWelfareOptions {
  lp::SimplexOptions simplex;
};

/// Builds the Eq 1-7 LP for `net` (exposed for tests and the MILP layers).
lp::Problem build_social_welfare_lp(const Network& net);

/// Solves the social-welfare problem. status != kOptimal means the network
/// data is inconsistent (the LP is always feasible at f = 0 for validated
/// networks, so infeasibility indicates a modelling bug).
FlowSolution solve_social_welfare(const Network& net,
                                  const SocialWelfareOptions& options = {});

}  // namespace gridsec::flow
