// Elastic demand: piecewise-linear willingness-to-pay.
//
// The paper fixes per-unit consumer prices ("for the sake of simplicity in
// algorithmic convergence"). Real loads substitute and curtail: the first
// megawatts are worth far more than the last. This extension models a
// consumer as a stack of price tiers — each tier one demand edge with its
// own quantity and price — which keeps the problem an LP while giving a
// downward-sloping demand curve. Attack impacts soften accordingly: when
// supply is cut, the market sheds the *cheapest* tiers first, so the
// welfare loss per lost megawatt starts low instead of at the full retail
// price (see bench/ext_elasticity).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gridsec/flow/network.hpp"

namespace gridsec::flow {

struct DemandTier {
  double quantity = 0.0;  // tier width (delivered units)
  double price = 0.0;     // willingness to pay in this tier
};

/// Adds one demand edge per tier at `hub`, named "<name>.t<i>". Tiers
/// should be passed highest-price first (the order does not affect the
/// optimum, only the naming). Returns the created edge ids.
std::vector<EdgeId> add_elastic_demand(Network& net, const std::string& name,
                                       NodeId hub,
                                       std::span<const DemandTier> tiers);

/// Builds a tier stack approximating a linear demand curve that starts at
/// `max_price` and hits zero at `max_quantity`, using `num_tiers` equal
/// quantity steps priced at the curve's midpoint of each step.
std::vector<DemandTier> linear_demand_curve(double max_price,
                                            double max_quantity,
                                            int num_tiers);

}  // namespace gridsec::flow
