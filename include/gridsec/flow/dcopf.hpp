// DC optimal power flow: dispatch under phase-angle physics.
//
// The paper's impact model deliberately ignores "low level mechanics such
// as voltages and phase angles", citing D-FACTS devices that let operators
// steer flows. This module supplies the physics it abstracts away — the
// standard DC (B-θ) linearization where a line's flow is forced to
// f = B·(θ_from − θ_to) — so the abstraction can be tested: a transport
// model routes freely around congestion, while Kirchhoff's laws push
// parallel ("loop") flows that can congest lines a router would avoid.
//
// The LP: minimize generation cost − served-load value over
//   generator outputs g ∈ [0, cap], served loads d ∈ [0, demand],
//   free bus angles θ (slack bus pinned at 0),
//   line flows f ∈ [−cap, cap] tied by f − B·θ_from + B·θ_to = 0,
//   nodal balance  Σgen − Σload = Σ f_out − Σ f_in  per bus.
// Bus LMPs are the balance-row duals.
#pragma once

#include <string>
#include <vector>

#include "gridsec/lp/problem.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::flow {

struct DcLine {
  std::string name;
  int from = -1;
  int to = -1;
  double susceptance = 1.0;  // per-unit B
  double capacity = 0.0;     // thermal limit |f| <= capacity
};

struct DcGenerator {
  std::string name;
  int bus = -1;
  double capacity = 0.0;
  double cost = 0.0;  // $/unit
};

struct DcLoad {
  std::string name;
  int bus = -1;
  double demand = 0.0;
  double price = 0.0;  // willingness to pay $/unit
};

class DcNetwork {
 public:
  int add_bus(std::string name);
  int add_line(std::string name, int from, int to, double susceptance,
               double capacity);
  int add_generator(std::string name, int bus, double capacity, double cost);
  int add_load(std::string name, int bus, double demand, double price);

  [[nodiscard]] int num_buses() const {
    return static_cast<int>(buses_.size());
  }
  [[nodiscard]] const std::vector<std::string>& buses() const {
    return buses_;
  }
  [[nodiscard]] const std::vector<DcLine>& lines() const { return lines_; }
  [[nodiscard]] const std::vector<DcGenerator>& generators() const {
    return generators_;
  }
  [[nodiscard]] const std::vector<DcLoad>& loads() const { return loads_; }

  std::vector<DcLine>& mutable_lines() { return lines_; }
  std::vector<DcGenerator>& mutable_generators() { return generators_; }

 private:
  std::vector<std::string> buses_;
  std::vector<DcLine> lines_;
  std::vector<DcGenerator> generators_;
  std::vector<DcLoad> loads_;
};

struct DcSolution {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double welfare = 0.0;
  std::vector<double> theta;      // per bus (radian-like, slack = 0)
  std::vector<double> line_flow;  // per line, signed (from -> to positive)
  std::vector<double> generation; // per generator
  std::vector<double> served;     // per load
  std::vector<double> bus_price;  // LMP per bus

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

/// Solves the DC-OPF. Bus 0 is the slack (angle reference); the network
/// must have at least one bus.
///
/// Outage modelling: remove the line from the network. Zeroing only the
/// capacity keeps the susceptance coupling alive and pins
/// θ_from == θ_to — a *different* (and usually more damaging) constraint
/// than losing the line.
DcSolution solve_dc_opf(const DcNetwork& net);

/// Transport relaxation of the same data: identical LP without the angle
/// coupling (flows limited only by line capacity) — the paper's §II-D1
/// modelling choice. The welfare gap to solve_dc_opf quantifies what the
/// abstraction gives away (it is always >= 0).
DcSolution solve_transport_relaxation(const DcNetwork& net);

}  // namespace gridsec::flow
