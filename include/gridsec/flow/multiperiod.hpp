// Time-domain extension of the impact model (§II-D5).
//
// The paper evaluates a single demand instance but notes: "A time-domain
// component can be added to the model by integrating several instances of
// the utility function to represent varying demands and generating
// constraints." This module builds that extension:
//
//  * a horizon of periods, each scaling the base network's demand (and
//    optionally supply, e.g. solar availability) and weighted by duration;
//  * one joint LP over all periods — flow variables per (edge, period),
//    per-period lossy conservation, plus optional *ramp constraints*
//    coupling consecutive periods' supply-edge outputs
//    (|f_t − f_{t−1}| ≤ ramp_limit · capacity), the "time to reach maximum
//    output" constraint the paper calls out;
//  * multi-period attack impact: an attack persists for the whole horizon
//    (the paper's assumption that one instance "extends for the duration
//    of an attack" generalized to a weighted horizon).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/flow/social_welfare.hpp"

namespace gridsec::flow {

struct PeriodSpec {
  std::string name;
  double duration_hours = 1.0;  // weight of this period in the objective
  double demand_scale = 1.0;    // multiplies every demand edge's capacity
  double supply_scale = 1.0;    // multiplies every supply edge's capacity
};

struct RampSpec {
  /// Max change of a supply edge's delivered output between consecutive
  /// periods, as a fraction of its (scaled) capacity. >=1 disables.
  double limit_fraction = 1.0;
};

struct MultiPeriodSolution {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  /// Duration-weighted total welfare over the horizon.
  double total_welfare = 0.0;
  /// Per-period welfare (duration-weighted) and flows (per edge).
  std::vector<double> period_welfare;
  std::vector<std::vector<double>> period_flow;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

/// Builds the joint LP (exposed for tests).
lp::Problem build_multi_period_lp(const Network& net,
                                  std::span<const PeriodSpec> periods,
                                  const RampSpec& ramp = {});

/// Solves the horizon jointly. With one period of duration 1 and no ramp
/// limit this equals solve_social_welfare.
MultiPeriodSolution solve_multi_period(const Network& net,
                                       std::span<const PeriodSpec> periods,
                                       const RampSpec& ramp = {},
                                       const SocialWelfareOptions& opt = {});

/// A typical daily horizon: night / morning / peak / evening with demand
/// scales (0.6, 0.9, 1.0, 0.85) and durations (8h, 4h, 6h, 6h).
std::vector<PeriodSpec> daily_periods();

}  // namespace gridsec::flow
