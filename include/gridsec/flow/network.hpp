// Energy flow-graph model (§II-D1 of the paper).
//
// Everything attackable is an edge: supply edges (generator into a hub),
// demand edges (hub into a consumer terminal), transmission edges
// (hub to hub) and conversion edges (e.g. gas hub to electric hub with
// thermal losses). Hubs enforce lossy conservation (Eq 7); terminals do not.
// The paper's supply/demand caps (Eqs 5–6) become capacity bounds on the
// supply/demand edges, and its data-sanity constraints (Eqs 3–4) live in
// Network::validate().
//
// Flow convention: f(u,v) is measured at the *receiving* end; an edge with
// loss l withdraws f/(1-l) at its tail to deliver f at its head.
#pragma once

#include <string>
#include <vector>

#include "gridsec/util/error.hpp"

namespace gridsec::flow {

using NodeId = int;
using EdgeId = int;

enum class NodeKind {
  kHub,     // lossy-conservation bus (electric bus / gas header)
  kSource,  // generator terminal: energy enters the system here
  kSink,    // consumer terminal: energy leaves the system here
};

enum class EdgeKind {
  kSupply,        // source terminal -> hub (production)
  kDemand,        // hub -> sink terminal (consumption; cost is -price)
  kTransmission,  // hub -> hub, same commodity
  kConversion,    // hub -> hub, commodity change (e.g. gas -> electric)
};

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kHub;
};

struct Edge {
  std::string name;
  EdgeKind kind = EdgeKind::kTransmission;
  NodeId from = -1;
  NodeId to = -1;
  double capacity = 0.0;  // max delivered flow, c(u,v)
  double cost = 0.0;      // per delivered unit, a(u,v); negative = revenue
  double loss = 0.0;      // fractional loss l(u,v) in [0, 1)
};

class Network {
 public:
  NodeId add_hub(std::string name);
  NodeId add_source(std::string name);
  NodeId add_sink(std::string name);

  /// Generic edge. Terminal endpoints must match the edge kind
  /// (kSupply from a source, kDemand into a sink, others hub-to-hub).
  EdgeId add_edge(std::string name, EdgeKind kind, NodeId from, NodeId to,
                  double capacity, double cost, double loss = 0.0);

  /// Creates a dedicated source terminal plus its supply edge into `hub`.
  EdgeId add_supply(std::string name, NodeId hub, double capacity,
                    double unit_cost, double loss = 0.0);
  /// Creates a dedicated sink terminal plus its demand edge out of `hub`.
  /// `unit_price` is what the consumer pays (stored as cost = -unit_price).
  EdgeId add_demand(std::string name, NodeId hub, double capacity,
                    double unit_price, double loss = 0.0);

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] int num_edges() const {
    return static_cast<int>(edges_.size());
  }
  [[nodiscard]] const Node& node(NodeId id) const {
    GRIDSEC_ASSERT(id >= 0 && id < num_nodes());
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Edge& edge(EdgeId id) const {
    GRIDSEC_ASSERT(id >= 0 && id < num_edges());
    return edges_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId id) const {
    GRIDSEC_ASSERT(id >= 0 && id < num_nodes());
    return out_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId id) const {
    GRIDSEC_ASSERT(id >= 0 && id < num_nodes());
    return in_[static_cast<std::size_t>(id)];
  }

  /// Mutators used by attack/noise perturbations and fault injection.
  /// Deliberately unchecked beyond the edge id: perturbed values may land
  /// outside the valid domain (negative capacity, NaN cost, loss >= 1) and
  /// validate() / solve_social_welfare report that as a typed status
  /// instead of aborting here.
  void set_capacity(EdgeId id, double capacity);
  void set_cost(EdgeId id, double cost);
  void set_loss(EdgeId id, double loss);

  /// Total demand-edge capacity (max possible consumption).
  [[nodiscard]] double total_demand_capacity() const;
  /// Total supply-edge capacity (max possible production).
  [[nodiscard]] double total_supply_capacity() const;

  /// Structural sanity: endpoint kinds match edge kinds, losses in [0,1),
  /// capacities nonnegative, plus the paper's Eqs 3-4 analogue — every
  /// demand edge's hub must have enough incident capacity to possibly
  /// serve it.
  [[nodiscard]] Status validate() const;

  /// Looks up an edge by name (kNotFound if absent; names should be unique).
  [[nodiscard]] StatusOr<EdgeId> find_edge(std::string_view name) const;

 private:
  NodeId add_node(std::string name, NodeKind kind);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace gridsec::flow
