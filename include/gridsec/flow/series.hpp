// The paper's iterative profit-sharing procedure for competitors in series
// (§II-D2, second listing).
//
// When independent actors sit on one supply chain, every one of them sees
// the same marginal cost at its output: LMP-style pricing is degenerate and
// cannot say who pockets the chain margin. The paper resolves this by a
// negotiation loop — each actor grows the markup on its segment until the
// flow would be perturbed, then backs off until it is restored — and states
// the outcome: each of the N actors keeps roughly 1/N of the chain profit.
//
// negotiate_series_profits implements that loop directly: in each round
// every actor attempts to raise its markup by the current step; an attempt
// that would push the delivered price past the consumer's willingness to
// pay (Σ m_j > M, the "flow perturbed" condition) is rejected — the actor
// backs off and the step is halved ("reduce cost ... until flow is
// restored"). Starting from zero markups this lock-step growth terminates
// at the equal split m_i = M/N to within the convergence tolerance — the
// paper's stated ~1/N outcome.
#pragma once

#include <span>
#include <vector>

#include "gridsec/flow/network.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec::flow {

/// A supply chain collapsed to scalars: one producer feeding consecutive
/// actor-owned segments into one consumer.
struct SeriesChain {
  double supply_cost = 0.0;          // producer's per-unit cost
  std::vector<double> segment_cost;  // per-actor transport cost, in order
  double consumer_price = 0.0;       // what the final consumer pays
  double flow = 0.0;                 // committed flow along the chain
};

struct SeriesShareResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> markup;        // per-actor per-unit margin taken
  std::vector<double> actor_profit;  // markup · flow
  double chain_margin = 0.0;         // total per-unit margin M
};

struct SeriesNegotiationOptions {
  double tolerance = 0.005;  // the paper's 0.5 % convergence criterion
  /// Initial markup step, as a fraction of the chain margin.
  double initial_step_fraction = 0.25;
  int max_iterations = 100000;
};

/// Divides the chain margin among the actors. With margin M ≤ 0 everyone
/// gets zero (the chain is not profitable and carries no discretionary
/// rent). Deterministic; independent of actor order beyond rounding.
SeriesShareResult negotiate_series_profits(
    const SeriesChain& chain, const SeriesNegotiationOptions& options = {});

/// Collapses a pure chain network (exactly one supply edge, one demand
/// edge, hubs in a line) plus an edge-ownership map into a SeriesChain with
/// one entry per distinct actor along the chain, ordered from producer to
/// consumer. Supply/demand edges belong to the producer/consumer side and
/// contribute their costs to supply_cost / consumer_price. Fails with
/// kInvalidArgument when the network is not a simple chain.
StatusOr<SeriesChain> extract_series_chain(const Network& net,
                                           std::span<const int> owners,
                                           std::vector<int>* chain_actors);

}  // namespace gridsec::flow
