// Bump allocator over reserved contiguous buffers.
//
// An Arena hands out raw memory by bumping a cursor through a chain of
// malloc'd blocks; individual frees are no-ops and the whole arena is
// recycled at once with reset(). reset() keeps ONE block sized to the
// high-water mark of the previous cycles, so a steady-state user (a solver
// workspace binding the same problem shape every solve) performs zero heap
// allocations after its first cycle and all of its scratch lives in one
// contiguous, cache-friendly buffer.
//
// Thread safety: none, by design. An arena belongs to exactly one owner —
// a solver workspace, a thread-pool worker's scratch slot — and is never
// shared across threads.
//
// Debugging: set GRIDSEC_ARENA_POISON=1 to memset recycled memory to 0xA5
// on every reset (stale reads become loud garbage); under AddressSanitizer
// the recycled region is additionally poisoned so a use-after-reset is an
// ASan error at the faulting line, and each allocation unpoisons exactly
// the bytes it returns.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <type_traits>

namespace gridsec::util {

class Arena {
 public:
  /// Reserves `initial_capacity` bytes up front (0 = allocate lazily).
  explicit Arena(std::size_t initial_capacity = 0);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized memory aligned to `align` (a power
  /// of two). Never returns nullptr; grows the block chain on demand.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Typed convenience: `count` default-initialized (i.e. uninitialized
  /// for scalars) elements of a trivially-destructible T.
  template <typename T>
  std::span<T> allocate_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is recycled without running destructors");
    if (count == 0) return {};
    auto* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    // Start each element's lifetime without touching the bytes
    // (default-init of a trivial T is a no-op the compiler elides).
    for (std::size_t i = 0; i < count; ++i) {
      ::new (static_cast<void*>(p + i)) T;
    }
    return {p, count};
  }

  /// Recycles the arena: every previous allocation is invalidated, and the
  /// block chain is consolidated into a single block sized to the largest
  /// total ever used (the high-water mark), so the next cycle of identical
  /// allocations is contiguous and heap-free.
  void reset();

  /// Frees every block (capacity drops to zero).
  void release();

  struct Stats {
    std::size_t capacity = 0;    // bytes currently reserved
    std::size_t used = 0;        // bytes handed out since the last reset
    std::size_t high_water = 0;  // max `used` across all cycles
    std::size_t blocks = 0;      // blocks in the current chain
    std::size_t resets = 0;      // reset() calls
    std::size_t block_allocations = 0;  // heap blocks ever requested
  };
  [[nodiscard]] Stats stats() const;

  /// True when GRIDSEC_ARENA_POISON is set in the environment (read once
  /// per process).
  static bool poison_enabled();

 private:
  struct Block {
    Block* prev = nullptr;
    std::size_t size = 0;  // usable bytes after the header
    // Payload follows the header.
    [[nodiscard]] std::byte* data() {
      return reinterpret_cast<std::byte*>(this + 1);
    }
  };

  /// Appends a block with at least `min_bytes` usable bytes and makes it
  /// current.
  void grow(std::size_t min_bytes);
  void free_chain();

  Block* head_ = nullptr;       // current (most recent) block
  std::size_t cursor_ = 0;      // bytes used within head_
  std::size_t used_total_ = 0;  // bytes used across the whole chain
  Stats stats_;
};

/// STL-compatible allocator carving from an Arena. Deallocation is a no-op:
/// memory comes back only at Arena::reset(). Containers using it must not
/// outlive the arena cycle they were built in.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using propagate_on_container_copy_assignment = std::true_type;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // recycled at reset()

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace gridsec::util
