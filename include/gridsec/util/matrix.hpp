// Dense row-major matrix of doubles. Sized for the small LPs that arise from
// 12-hub energy graphs (tens to low hundreds of rows/columns); no BLAS, no
// expression templates — clarity and cache-friendly loops.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "gridsec/util/error.hpp"

namespace gridsec {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major brace construction: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  /// Reshapes to rows x cols with every element set to `fill`, reusing the
  /// existing heap block when it is large enough (the workspace-reuse path:
  /// a scratch matrix re-assigned to the same shape every solve allocates
  /// only once).
  void assign(std::size_t rows, std::size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    GRIDSEC_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    GRIDSEC_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    GRIDSEC_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    GRIDSEC_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  void swap_rows(std::size_t a, std::size_t b);
  /// row(dst) += factor * row(src)
  void add_scaled_row(std::size_t dst, std::size_t src, double factor);
  void scale_row(std::size_t r, double factor);

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> operator*(
      std::span<const double> x) const;

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns kInvalidArgument on shape mismatch, kInternal when singular.
StatusOr<std::vector<double>> solve_linear_system(Matrix a,
                                                  std::vector<double> b);

/// Dot product (sizes must match).
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace gridsec
