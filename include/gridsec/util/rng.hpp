// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in gridsec takes an explicit seed. Monte-Carlo
// harnesses derive one independent stream per trial with derive_stream(), so
// results are invariant to thread count and scheduling order.
#pragma once

#include <cstdint>
#include <vector>

namespace gridsec {

/// SplitMix64: used to expand user seeds into full generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Rejection-sampled: no modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Marsaglia polar method (cached spare value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Derives an independent generator for sub-stream `index`. Statistically
  /// independent streams from the same parent seed; used for per-trial RNGs
  /// in parallel Monte Carlo.
  [[nodiscard]] Rng derive_stream(std::uint64_t index) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;  // retained for derive_stream
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace gridsec
