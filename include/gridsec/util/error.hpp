// Error-handling primitives shared by all gridsec modules.
//
// Expected, recoverable failures (infeasible LP, bad scenario file) travel as
// Status / StatusOr values; programming errors (contract violations) abort
// via GRIDSEC_ASSERT so they surface immediately in tests.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gridsec {
namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);
}  // namespace detail
}  // namespace gridsec

/// Contract check: aborts with location info when violated. Always on —
/// the solvers here are small enough that the checks are cheap relative to
/// the arithmetic they guard.
#define GRIDSEC_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::gridsec::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                     \
  } while (false)

#define GRIDSEC_ASSERT_MSG(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gridsec::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)

namespace gridsec {

/// Coarse classification of a recoverable failure.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNotFound,
  kInternal,
  kTimeLimit,       // wall-clock deadline expired before completion
  kNumericalError,  // NaN/Inf data or a numerically wedged solve
};

/// Human-readable name of an ErrorCode (stable, for logs and tests).
std::string_view to_string(ErrorCode code);

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string msg) {
    return {ErrorCode::kInvalidArgument, std::move(msg)};
  }
  static Status infeasible(std::string msg) {
    return {ErrorCode::kInfeasible, std::move(msg)};
  }
  static Status unbounded(std::string msg) {
    return {ErrorCode::kUnbounded, std::move(msg)};
  }
  static Status iteration_limit(std::string msg) {
    return {ErrorCode::kIterationLimit, std::move(msg)};
  }
  static Status not_found(std::string msg) {
    return {ErrorCode::kNotFound, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {ErrorCode::kInternal, std::move(msg)};
  }
  static Status time_limit(std::string msg) {
    return {ErrorCode::kTimeLimit, std::move(msg)};
  }
  static Status numerical_error(std::string msg) {
    return {ErrorCode::kNumericalError, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or a Status explaining why there is none.
///
/// Accessing the value on an error state is a contract violation: every
/// accessor asserts is_ok() first, so a forgotten status check aborts with a
/// location instead of dereferencing an empty optional (UB).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    GRIDSEC_ASSERT_MSG(is_ok(), "StatusOr::value() on error state");
    return *value_;
  }
  [[nodiscard]] T& value() & {
    GRIDSEC_ASSERT_MSG(is_ok(), "StatusOr::value() on error state");
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    GRIDSEC_ASSERT_MSG(is_ok(), "StatusOr::value() on error state");
    return std::move(*value_);
  }

  [[nodiscard]] const T& operator*() const& {
    GRIDSEC_ASSERT_MSG(is_ok(), "StatusOr::operator* on error state");
    return *value_;
  }
  [[nodiscard]] T& operator*() & {
    GRIDSEC_ASSERT_MSG(is_ok(), "StatusOr::operator* on error state");
    return *value_;
  }
  [[nodiscard]] const T* operator->() const {
    GRIDSEC_ASSERT_MSG(is_ok(), "StatusOr::operator-> on error state");
    return &*value_;
  }
  [[nodiscard]] T* operator->() {
    GRIDSEC_ASSERT_MSG(is_ok(), "StatusOr::operator-> on error state");
    return &*value_;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace gridsec
