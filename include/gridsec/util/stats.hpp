// Streaming and batch statistics used by the Monte-Carlo experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gridsec {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator (parallel reduction); Chan et al. update.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for n < 2).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean (0 for n < 2).
  [[nodiscard]] double std_error() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100]. xs need not be sorted.
double percentile(std::span<const double> xs, double p);
/// Pearson correlation coefficient; 0 when either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Average ranks (ties averaged), 1-based.
std::vector<double> ranks(std::span<const double> xs);

/// Spearman rank correlation (Pearson on the rank transforms).
double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys);

}  // namespace gridsec
