// Aligned console tables and CSV emission for experiment output.
//
// Every figure-reproduction bench prints its series twice: once as an
// aligned human-readable table, once as machine-readable CSV (so the series
// can be plotted externally).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gridsec {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header count.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return headers_.size(); }

  /// Renders with padded columns and a header rule.
  void print(std::ostream& os) const;
  /// Renders as RFC-4180-ish CSV (quotes fields containing , " or newline).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing-zero trimming; keeps
/// table columns visually aligned).
std::string format_double(double v, int precision = 4);

}  // namespace gridsec
