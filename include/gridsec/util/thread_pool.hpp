// Fixed-size thread pool and parallel_for used by the Monte-Carlo harness.
//
// Determinism contract: callers must make each work item self-seeding
// (e.g. Rng::derive_stream(trial_index)) so results do not depend on which
// thread runs which item.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gridsec {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n), distributing chunks over `pool`. Blocks until
/// all iterations complete. fn must be safe to call concurrently for
/// distinct i. With a null pool, runs serially.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace gridsec
