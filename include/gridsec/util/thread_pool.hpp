// Fixed-size thread pool and parallel_for used by the Monte-Carlo harness.
//
// Determinism contract: callers must make each work item self-seeding
// (e.g. Rng::derive_stream(trial_index)) so results do not depend on which
// thread runs which item.
//
// Hot-path allocation contract: parallel_for keeps its whole control block
// (claim cursor, failure latch, completion latch) on the caller's stack and
// enqueues raw function-pointer tasks, so dispatching a sweep performs no
// heap allocation beyond the queue's amortized deque storage. Per-worker
// solver state (arenas, solver workspaces, warm bases) lives in the
// worker's WorkerScratch slot — reused across every task the worker runs —
// rather than being reallocated per trial.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "gridsec/util/arena.hpp"

namespace gridsec {

namespace detail {
int next_scratch_type_id();
template <typename T>
int scratch_type_id() {
  static const int id = next_scratch_type_id();
  return id;
}
}  // namespace detail

/// Per-worker scratch state: a bump arena plus lazily-created typed slots
/// (one instance of each requested T per worker). A WorkerScratch belongs
/// to exactly one thread; nothing here is synchronized. Pool workers own
/// one for their lifetime; code running on a worker reaches it through
/// ThreadPool::current_scratch().
class WorkerScratch {
 public:
  WorkerScratch() = default;
  ~WorkerScratch() {
    for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
      if (it->ptr != nullptr) it->destroy(it->ptr);
    }
  }

  WorkerScratch(const WorkerScratch&) = delete;
  WorkerScratch& operator=(const WorkerScratch&) = delete;

  /// The worker's bump arena. Borrow for per-task scratch and reset()
  /// between tasks; do not hold allocations across tasks.
  [[nodiscard]] util::Arena& arena() { return arena_; }

  /// Lazily default-constructs (once per worker) and returns this worker's
  /// instance of T — e.g. a solver workspace that then persists across all
  /// tasks the worker runs. Destroyed with the worker.
  template <typename T>
  T& slot() {
    const auto id =
        static_cast<std::size_t>(detail::scratch_type_id<T>());
    if (id >= slots_.size()) slots_.resize(id + 1);
    Slot& s = slots_[id];
    if (s.ptr == nullptr) {
      s.ptr = new T();
      s.destroy = [](void* p) { delete static_cast<T*>(p); };
    }
    return *static_cast<T*>(s.ptr);
  }

 private:
  struct Slot {
    void* ptr = nullptr;
    void (*destroy)(void*) = nullptr;
  };

  util::Arena arena_;
  std::vector<Slot> slots_;
};

class ThreadPool {
 public:
  /// Cumulative per-worker accounting since pool construction. busy_ns is
  /// time spent inside task bodies; idle_ns is time spent parked on the
  /// queue's condition variable (including the current wait, for workers
  /// that are parked when worker_stats() is called). Dispatch overhead —
  /// the sliver between wake-up and task start — lands in neither bucket.
  struct WorkerStats {
    std::int64_t busy_ns = 0;
    std::int64_t idle_ns = 0;
    std::int64_t tasks = 0;
  };

  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// The scratch slot of the pool worker executing the current thread, or
  /// nullptr when the calling thread is not a pool worker. Thread-local;
  /// valid for the duration of the current task.
  [[nodiscard]] static WorkerScratch* current_scratch();

  /// Snapshot of per-worker busy/idle totals, one entry per worker. The
  /// same totals flow into the util.threadpool.busy_ns / idle_ns registry
  /// counters (cumulative across every pool in the process).
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

  /// worker_stats() of every live pool in the process, one outer entry per
  /// pool in construction order. Pools register themselves on construction
  /// and deregister before joining their workers, so every snapshot row
  /// refers to a pool that is fully alive. Feeds the telemetry sampler.
  [[nodiscard]] static std::vector<std::vector<WorkerStats>>
  stats_for_all_pools();

 private:
  /// One queue entry: either a raw function-pointer task (the allocation-
  /// free parallel_for path; must not throw) or a packaged_task from
  /// submit() (exceptions land in its future).
  struct Task {
    void (*raw)(void*) = nullptr;
    void* ctx = nullptr;
    std::packaged_task<void()> packaged;

    void run() {
      if (raw != nullptr) {
        raw(ctx);
      } else {
        packaged();
      }
    }
  };

  /// Enqueues `count` copies of a raw task. The callee owns all
  /// completion/error signalling through `ctx`.
  void submit_raw(void (*fn)(void*), void* ctx, std::size_t count);

  void worker_loop(std::size_t worker);

  friend void parallel_for(ThreadPool* pool, std::size_t n,
                           const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<WorkerStats> stats_;          // indexed by worker, under mutex_
  std::vector<std::uint64_t> waiting_since_;  // ns timestamp, 0 = not parked
};

/// Runs fn(i) for i in [0, n), distributing chunks over `pool`. Blocks until
/// all iterations complete. fn must be safe to call concurrently for
/// distinct i. With a null pool, runs serially. Performs no heap allocation
/// on the dispatch path (see the header comment).
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace gridsec
