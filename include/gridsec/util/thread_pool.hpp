// Fixed-size thread pool and parallel_for used by the Monte-Carlo harness.
//
// Determinism contract: callers must make each work item self-seeding
// (e.g. Rng::derive_stream(trial_index)) so results do not depend on which
// thread runs which item.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gridsec {

class ThreadPool {
 public:
  /// Cumulative per-worker accounting since pool construction. busy_ns is
  /// time spent inside task bodies; idle_ns is time spent parked on the
  /// queue's condition variable (including the current wait, for workers
  /// that are parked when worker_stats() is called). Dispatch overhead —
  /// the sliver between wake-up and task start — lands in neither bucket.
  struct WorkerStats {
    std::int64_t busy_ns = 0;
    std::int64_t idle_ns = 0;
    std::int64_t tasks = 0;
  };

  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Snapshot of per-worker busy/idle totals, one entry per worker. The
  /// same totals flow into the util.threadpool.busy_ns / idle_ns registry
  /// counters (cumulative across every pool in the process).
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

  /// worker_stats() of every live pool in the process, one outer entry per
  /// pool in construction order. Pools register themselves on construction
  /// and deregister before joining their workers, so every snapshot row
  /// refers to a pool that is fully alive. Feeds the telemetry sampler.
  [[nodiscard]] static std::vector<std::vector<WorkerStats>>
  stats_for_all_pools();

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<WorkerStats> stats_;          // indexed by worker, under mutex_
  std::vector<std::uint64_t> waiting_since_;  // ns timestamp, 0 = not parked
};

/// Runs fn(i) for i in [0, n), distributing chunks over `pool`. Blocks until
/// all iterations complete. fn must be safe to call concurrently for
/// distinct i. With a null pool, runs serially.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace gridsec
