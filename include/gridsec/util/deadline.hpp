// Wall-clock guardrail shared by the solver loops (simplex pivots, B&B
// nodes, the adversary's target search). A default-constructed Deadline
// never expires, so unguarded call sites cost one branch.
#pragma once

#include <chrono>

namespace gridsec {

struct Deadline {
  bool armed = false;
  std::chrono::steady_clock::time_point at{};

  /// Deadline `ms` milliseconds from now; ms <= 0 means "never expires".
  static Deadline in_ms(double ms) {
    Deadline d;
    if (ms > 0.0) {
      d.armed = true;
      d.at = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
    }
    return d;
  }

  [[nodiscard]] bool expired() const {
    return armed && std::chrono::steady_clock::now() >= at;
  }

  /// Milliseconds left, clamped at zero; a huge value when unarmed. Used to
  /// hand the remaining budget down to sub-solves.
  [[nodiscard]] double remaining_ms() const {
    if (!armed) return 1e18;
    const auto left = std::chrono::duration<double, std::milli>(
        at - std::chrono::steady_clock::now());
    return left.count() > 0.0 ? left.count() : 0.0;
  }
};

}  // namespace gridsec
