#!/usr/bin/env bash
# Regenerates every committed bench baseline in bench/baselines/.
#
# Run this after a change that intentionally moves gated counters (pivot
# counts, allocation totals, B&B nodes, ...). The bench settings below
# MUST match the ones CI uses in .github/workflows/ci.yml — the gate
# compares per-rep counter deltas, and trial counts are part of the
# workload. Counters are seed-deterministic, so two runs of this script
# on any machine produce identical tracked metrics (wall-time fields
# differ; gridsec-benchdiff never gates on them).
#
# Usage: scripts/regen_baselines.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BASELINES="bench/baselines"

if [ ! -d "${BUILD_DIR}/bench" ]; then
  echo "regen_baselines: '${BUILD_DIR}/bench' not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} && cmake --build ${BUILD_DIR}" >&2
  exit 2
fi

run() {
  local tool="$1"
  shift
  echo "regen_baselines: ${tool} $*"
  "${BUILD_DIR}/bench/${tool}" "$@" \
    --json="${BASELINES}/BENCH_${tool}.json" > /dev/null
}

# Keep in lockstep with the "Run benches" step in ci.yml.
run micro_solvers --trials=5
run fig2_interdependent --trials=5 --threads=2
run fig6_collaboration --trials=3 --threads=2
run fig4_impact_matrix --trials=5

# Every regenerated report must parse as a valid harness-v2 report —
# the same check CI applies before gating.
for f in "${BASELINES}"/BENCH_*.json; do
  "${BUILD_DIR}/tools/gridsec-benchdiff" --validate "$f"
done

echo "regen_baselines: done — review the diff and commit ${BASELINES}/."
