#!/usr/bin/env bash
# One-shot reproduction: build, test, regenerate every figure and
# extension experiment. Outputs land in test_output.txt / bench_output.txt
# at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

echo
echo "Reproduction complete."
echo "  tests:  $(grep -E 'tests passed' test_output.txt | tail -1)"
echo "  series: see bench_output.txt and EXPERIMENTS.md"
