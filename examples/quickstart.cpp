// Quickstart: the full gridsec pipeline on a toy two-generator market.
//
//   1. build an energy network,
//   2. solve the social-welfare optimal flow,
//   3. divide profits among actors at marginal-cost prices,
//   4. measure the impact of attacks on every asset (IM[a,t]),
//   5. let the strategic adversary pick its attack,
//   6. let the defenders invest, and see whether the attack still pays.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "gridsec/core/game.hpp"
#include "gridsec/sim/scenario.hpp"

int main() {
  using namespace gridsec;

  // 1. A hub with a cheap capacity-limited generator (actor 0), an
  //    expensive abundant one (actor 1) and a consumer (actor 2).
  flow::Network net = sim::make_duopoly(
      /*cheap_capacity=*/60.0, /*cheap_cost=*/10.0,
      /*dear_capacity=*/100.0, /*dear_cost=*/30.0,
      /*demand=*/80.0, /*price=*/50.0);
  cps::Ownership own({0, 1, 2}, 3);

  // 2-3. Social-welfare dispatch + competitive profit division.
  auto alloc = flow::allocate_profits(net, own.owners(), own.num_actors());
  std::printf("social welfare: %.1f\n", alloc.welfare);
  for (int a = 0; a < own.num_actors(); ++a) {
    std::printf("  actor %d profit: %.1f\n", a,
                alloc.actor_profit[static_cast<std::size_t>(a)]);
  }

  // 4. Impact matrix: what each actor wins or loses when asset t is
  //    knocked out (capacity -> 0).
  auto impact = cps::compute_impact_matrix(net, own);
  if (!impact.is_ok()) {
    std::printf("impact failed: %s\n", impact.status().to_string().c_str());
    return 1;
  }
  std::printf("\nimpact matrix IM[actor, target]:\n");
  for (int a = 0; a < own.num_actors(); ++a) {
    std::printf("  actor %d:", a);
    for (int t = 0; t < net.num_edges(); ++t) {
      std::printf(" %8.1f", impact->matrix.at(a, t));
    }
    std::printf("\n");
  }

  // 5. The strategic adversary picks targets and actor positions.
  core::AdversaryConfig adv;
  adv.max_targets = 1;
  core::StrategicAdversary sa(adv);
  auto plan = sa.plan(impact->matrix);
  std::printf("\nSA attacks:");
  for (int t : plan.targets) std::printf(" %s", net.edge(t).name.c_str());
  std::printf("  (holding positions in");
  for (int a : plan.actors) std::printf(" actor%d", a);
  std::printf("), anticipated return %.1f\n", plan.anticipated_return);

  // 6. Collaborative defense: everyone hurt by the attack chips in.
  core::GameConfig game;
  game.adversary = adv;
  game.collaborative = true;
  game.defender.defense_cost.assign(
      static_cast<std::size_t>(net.num_edges()), 10.0);
  game.defender.budget.assign(static_cast<std::size_t>(own.num_actors()),
                              10.0);
  Rng rng(1);
  auto outcome = core::play_defense_game(net, own, game, rng);
  if (!outcome.is_ok()) {
    std::printf("game failed: %s\n", outcome.status().to_string().c_str());
    return 1;
  }
  std::printf("\nadversary gain undefended: %.1f\n",
              outcome->adversary_gain_undefended);
  std::printf("adversary gain defended:   %.1f\n",
              outcome->adversary_gain_defended);
  std::printf("defense effectiveness:     %.1f\n",
              outcome->defense_effectiveness);
  return 0;
}
