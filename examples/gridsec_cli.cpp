// gridsec_cli — drive the pipeline from a network file.
//
//   gridsec_cli dump        <file>             solve + print dispatch/LMPs
//   gridsec_cli impact      <file>             impact matrix IM[a,t]
//   gridsec_cli attack      <file> [options]   strategic-adversary plan
//   gridsec_cli defend      <file> [options]   attack + defense game
//   gridsec_cli rents       <file>             capacity rents (paper probe)
//   gridsec_cli stackelberg <file> [options]   leader-follower defense
//
// Common options:
//   --actors=N     random 1/N ownership (default 4; ignored when the file
//                  carries `owner` lines)
//   --seed=S       RNG seed (default 1)
//   --targets=K    adversary cardinality cap (default 6)
//   --collab       collaborative defense (defend)
//   --cost=C       per-asset defense cost (defend; default 2000)
//   --budget=B     system defense budget in assets (defend; default 12)
//   --trace=FILE   write a Chrome trace-event JSON of the run to FILE
//   --profile=FILE run under the self-profiler and write the
//                  gridsec.profile JSON to FILE plus folded flamegraph
//                  stacks to FILE.folded (render with gridsec-inspect
//                  profile FILE; see docs/observability.md)
//   --metrics      dump the metrics registry as JSON to stdout after the run
//   --metrics-port=N  serve GET /metrics (OpenMetrics), /healthz and
//                  /progress on 127.0.0.1:N for the duration of the run
//                  (N=0 picks an ephemeral port, logged to stderr;
//                  unavailable in GRIDSEC_NO_SERVE builds)
//   --progress     mirror live progress/ETA heartbeats to stderr
//   --timeseries=FILE  run the telemetry sampler (100 ms cadence) and
//                  write the gridsec.timeseries artifact to FILE at exit
//                  (.csv extension selects the flat CSV form; render with
//                  gridsec-inspect top FILE)
//   --report=FILE  write a gridsec.bench_report run report (provenance
//                  manifest + wall time + metric deltas) to FILE
//   --time-limit-ms=N  wall-clock budget per solve (LP pivoting, B&B nodes,
//                  adversary search); expiry degrades to the best incumbent
//   --fail-fast    treat any non-optimal solver verdict as a hard error
//                  instead of degrading to budget-limited incumbents
//   --warm-start=off  disable simplex warm starts process-wide (every
//                  solve runs cold); `on` is the default. The A/B switch
//                  for docs/solvers.md's warm-start machinery.
//   --audit=FILE   write a gridsec.audit_bundle for the run to FILE: the
//                  first failing solve if any solve failed, otherwise the
//                  last solve observed, with per-actor attribution rows
//                  attached (inspect with gridsec-inspect)
//
// Network file format: see include/gridsec/flow/io.hpp.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "gridsec/core/game.hpp"
#include "gridsec/core/stackelberg.hpp"
#include "gridsec/flow/io.hpp"
#include "gridsec/flow/marginal_cost.hpp"
#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/lp/basis.hpp"
#include "gridsec/obs/audit.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/obs/report.hpp"
#include "gridsec/obs/serve.hpp"
#include "gridsec/obs/telemetry.hpp"
#include "gridsec/robust/recovery.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/table.hpp"

namespace {

using namespace gridsec;

struct CliArgs {
  std::string command;
  std::string file;
  int actors = 4;
  std::uint64_t seed = 1;
  int targets = 6;
  bool collab = false;
  double cost = 2000.0;
  double budget_assets = 12.0;
  std::string trace_file;    // empty = tracing off
  std::string profile_file;  // empty = profiling off
  std::string report_file;   // empty = no run report
  std::string audit_file;    // empty = no audit bundle
  bool metrics = false;
  double time_limit_ms = 0.0;  // 0 = unlimited
  bool fail_fast = false;
  int metrics_port = -1;         // -1 = endpoint off; 0 = ephemeral port
  bool progress = false;
  std::string timeseries_file;   // empty = sampler off
};

/// Impact options with the CLI's wall-clock budget threaded down to every
/// simplex invocation (impact targets, allocation probes, defense MILPs).
cps::ImpactOptions impact_options(const CliArgs& args) {
  cps::ImpactOptions impact;
  impact.allocation.welfare.simplex.time_limit_ms = args.time_limit_ms;
  return impact;
}

int usage() {
  std::fprintf(stderr,
               "usage: gridsec_cli "
               "{dump|impact|attack|defend|rents|stackelberg} <file> "
               "[--actors=N] [--seed=S] [--targets=K] [--collab] "
               "[--cost=C] [--budget=B] [--trace=FILE] [--profile=FILE] "
               "[--report=FILE] "
               "[--audit=FILE] [--metrics] [--metrics-port=N] "
               "[--progress] [--timeseries=FILE] [--time-limit-ms=N] "
               "[--fail-fast] [--warm-start=on|off] "
               "[--recovery=ladder|off]\n");
  return 2;
}

// Strict numeric parsers: the whole value must parse, or we reject the flag.
bool parse_int(const char* s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  // Reject a leading '-' explicitly: strtoull accepts "-1" and silently
  // wraps it to 2^64-1.
  if (*s == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

cps::Ownership load_ownership(const flow::ParsedNetwork& parsed,
                              const CliArgs& args) {
  if (!parsed.owners.empty()) {
    int max_actor = 0;
    std::vector<int> owners = parsed.owners;
    for (int& o : owners) {
      if (o < 0) o = 0;  // unowned assets default to actor 0
      max_actor = std::max(max_actor, o);
    }
    return cps::Ownership(std::move(owners), max_actor + 1);
  }
  Rng rng(args.seed);
  return cps::Ownership::random(parsed.network.num_edges(), args.actors, rng);
}

int cmd_dump(const flow::ParsedNetwork& parsed, const CliArgs& args) {
  flow::SocialWelfareOptions options;
  options.simplex.time_limit_ms = args.time_limit_ms;
  auto sol = flow::solve_social_welfare(parsed.network, options);
  if (!sol.optimal()) {
    std::fprintf(stderr, "model failed to solve: %s\n",
                 std::string(lp::to_string(sol.status)).c_str());
    return 1;
  }
  Table t({"edge", "capacity", "cost", "loss", "flow"});
  for (int e = 0; e < parsed.network.num_edges(); ++e) {
    const auto& edge = parsed.network.edge(e);
    t.add_row({edge.name, format_double(edge.capacity, 2),
               format_double(edge.cost, 2), format_double(edge.loss, 3),
               format_double(sol.flow[static_cast<std::size_t>(e)], 2)});
  }
  t.print(std::cout);
  std::printf("\nwelfare: %.2f\n", sol.welfare);
  return 0;
}

int cmd_impact(const flow::ParsedNetwork& parsed, const CliArgs& args) {
  auto own = load_ownership(parsed, args);
  auto im = cps::compute_impact_matrix(parsed.network, own,
                                       impact_options(args));
  if (!im.is_ok()) {
    std::fprintf(stderr, "impact failed: %s\n",
                 im.status().to_string().c_str());
    return 1;
  }
  std::vector<std::string> headers{"target", "owner", "system"};
  for (int a = 0; a < own.num_actors(); ++a) {
    headers.push_back("actor" + std::to_string(a));
  }
  Table t(std::move(headers));
  for (int e = 0; e < parsed.network.num_edges(); ++e) {
    std::vector<std::string> row{parsed.network.edge(e).name,
                                 std::to_string(own.owner(e)),
                                 format_double(im->matrix.system_impact(e), 1)};
    for (int a = 0; a < own.num_actors(); ++a) {
      row.push_back(format_double(im->matrix.at(a, e), 1));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}

int cmd_attack(const flow::ParsedNetwork& parsed, const CliArgs& args) {
  auto own = load_ownership(parsed, args);
  auto im = cps::compute_impact_matrix(parsed.network, own,
                                       impact_options(args));
  if (!im.is_ok()) {
    std::fprintf(stderr, "impact failed: %s\n",
                 im.status().to_string().c_str());
    return 1;
  }
  core::AdversaryConfig cfg;
  cfg.max_targets = args.targets;
  cfg.time_limit_ms = args.time_limit_ms;
  core::StrategicAdversary sa(cfg);
  auto plan = sa.plan(im->matrix);
  char note[160];
  std::snprintf(note, sizeof(note),
                "anticipated return %.2f across %zu targets (cap %d)",
                plan.anticipated_return, plan.targets.size(), args.targets);
  obs::add_audit_attribution("attacker", note);
  for (int t : plan.targets) {
    std::snprintf(note, sizeof(note),
                  "selected by SA: system impact %.2f, owner actor %d",
                  im->matrix.system_impact(t), own.owner(t));
    obs::add_audit_attribution(
        "attacker:" + parsed.network.edge(t).name, note);
  }
  if (args.fail_fast && !plan.optimal()) {
    std::fprintf(stderr, "attack plan not optimal (--fail-fast): %s\n",
                 std::string(lp::to_string(plan.status)).c_str());
    return 1;
  }
  std::printf("status: %s\n", std::string(lp::to_string(plan.status)).c_str());
  std::printf("anticipated return: %.2f\n", plan.anticipated_return);
  std::printf("targets:");
  for (int t : plan.targets) {
    std::printf(" %s", parsed.network.edge(t).name.c_str());
  }
  std::printf("\nactor positions:");
  for (int a : plan.actors) std::printf(" %d", a);
  std::printf("\n");
  return 0;
}

int cmd_defend(const flow::ParsedNetwork& parsed, const CliArgs& args) {
  auto own = load_ownership(parsed, args);
  core::GameConfig game;
  game.adversary.max_targets = args.targets;
  game.adversary.time_limit_ms = args.time_limit_ms;
  game.impact = impact_options(args);
  game.collaborative = args.collab;
  game.defender.defense_cost.assign(
      static_cast<std::size_t>(parsed.network.num_edges()), args.cost);
  game.defender.budget.assign(
      static_cast<std::size_t>(own.num_actors()),
      args.budget_assets * args.cost / own.num_actors());
  Rng rng(args.seed);
  auto outcome = core::play_defense_game(parsed.network, own, game, rng);
  if (!outcome.is_ok()) {
    std::fprintf(stderr, "game failed: %s\n",
                 outcome.status().to_string().c_str());
    return 1;
  }
  char note[160];
  std::snprintf(note, sizeof(note),
                "%s defense, adversary gain %.2f -> %.2f (effect %.2f)",
                args.collab ? "collaborative" : "individual",
                outcome->adversary_gain_undefended,
                outcome->adversary_gain_defended,
                outcome->defense_effectiveness);
  obs::add_audit_attribution("defender", note);
  for (int t : outcome->attack.targets) {
    obs::add_audit_attribution("attacker:" + parsed.network.edge(t).name,
                               "in the adversary's target set");
  }
  for (int t = 0; t < parsed.network.num_edges(); ++t) {
    if (!outcome->defense.defended[static_cast<std::size_t>(t)]) continue;
    std::snprintf(note, sizeof(note),
                  "hardened by actor %d at cost %.0f", own.owner(t),
                  args.cost);
    obs::add_audit_attribution("defender:" + parsed.network.edge(t).name,
                               note);
  }
  // The game degrades to budget-limited incumbents by default; --fail-fast
  // promotes any unproven plan to a hard error.
  if (args.fail_fast &&
      (!outcome->defense.optimal() || !outcome->attack.optimal())) {
    std::fprintf(stderr,
                 "non-optimal plan (--fail-fast): defense=%s attack=%s\n",
                 std::string(lp::to_string(outcome->defense.status)).c_str(),
                 std::string(lp::to_string(outcome->attack.status)).c_str());
    return 1;
  }
  if (!outcome->defense.optimal() || !outcome->attack.optimal()) {
    std::printf("status: defense=%s attack=%s\n",
                std::string(lp::to_string(outcome->defense.status)).c_str(),
                std::string(lp::to_string(outcome->attack.status)).c_str());
  }
  std::printf("attack:");
  for (int t : outcome->attack.targets) {
    std::printf(" %s", parsed.network.edge(t).name.c_str());
  }
  std::printf("\ndefended:");
  for (int t = 0; t < parsed.network.num_edges(); ++t) {
    if (outcome->defense.defended[static_cast<std::size_t>(t)]) {
      std::printf(" %s", parsed.network.edge(t).name.c_str());
    }
  }
  std::printf("\nadversary gain undefended: %.2f\n",
              outcome->adversary_gain_undefended);
  std::printf("adversary gain defended:   %.2f\n",
              outcome->adversary_gain_defended);
  std::printf("defense effectiveness:     %.2f\n",
              outcome->defense_effectiveness);
  return 0;
}

int cmd_rents(const flow::ParsedNetwork& parsed) {
  auto base = flow::solve_social_welfare(parsed.network);
  if (!base.optimal()) {
    std::fprintf(stderr, "model failed to solve\n");
    return 1;
  }
  auto rents = flow::probe_capacity_rents(parsed.network, base);
  if (!rents.is_ok()) {
    std::fprintf(stderr, "probe failed: %s\n",
                 rents.status().to_string().c_str());
    return 1;
  }
  Table t({"edge", "flow", "saturated", "marginal_value_per_unit"});
  for (int e = 0; e < parsed.network.num_edges(); ++e) {
    const auto es = static_cast<std::size_t>(e);
    t.add_row({parsed.network.edge(e).name,
               format_double(base.flow[es], 2),
               (*rents)[es].saturated ? "yes" : "no",
               format_double((*rents)[es].marginal_value, 3)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_stackelberg(const flow::ParsedNetwork& parsed, const CliArgs& args) {
  auto own = load_ownership(parsed, args);
  auto im = cps::compute_impact_matrix(parsed.network, own,
                                       impact_options(args));
  if (!im.is_ok()) {
    std::fprintf(stderr, "impact failed: %s\n",
                 im.status().to_string().c_str());
    return 1;
  }
  core::StackelbergConfig cfg;
  cfg.adversary.max_targets = args.targets;
  cfg.adversary.time_limit_ms = args.time_limit_ms;
  cfg.defense_cost = 1.0;
  cfg.budget = args.budget_assets;
  auto plan = core::stackelberg_defense(im->matrix, cfg);
  char note[160];
  std::snprintf(note, sizeof(note),
                "leader spend %.1f over %d rounds: follower value %.2f -> "
                "%.2f",
                plan.spending, plan.rounds, plan.undefended_return,
                plan.follower_return);
  obs::add_audit_attribution("defender", note);
  for (int t : plan.follower_response.targets) {
    obs::add_audit_attribution("attacker:" + parsed.network.edge(t).name,
                               "follower best response target");
  }
  std::printf("undefended follower value: %.2f\n", plan.undefended_return);
  std::printf("defended:");
  for (int t = 0; t < parsed.network.num_edges(); ++t) {
    if (plan.defended[static_cast<std::size_t>(t)]) {
      std::printf(" %s", parsed.network.edge(t).name.c_str());
    }
  }
  std::printf("\nfollower best response:");
  for (int t : plan.follower_response.targets) {
    std::printf(" %s", parsed.network.edge(t).name.c_str());
  }
  std::printf("\nremaining follower value:  %.2f (%d defenses, spend %.1f)\n",
              plan.follower_return, plan.rounds, plan.spending);
  return 0;
}

int run_command(const flow::ParsedNetwork& parsed, const CliArgs& args) {
  if (args.command == "dump") return cmd_dump(parsed, args);
  if (args.command == "impact") return cmd_impact(parsed, args);
  if (args.command == "attack") return cmd_attack(parsed, args);
  if (args.command == "defend") return cmd_defend(parsed, args);
  if (args.command == "rents") return cmd_rents(parsed);
  if (args.command == "stackelberg") return cmd_stackelberg(parsed, args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  CliArgs args;
  args.command = argv[1];
  args.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&a](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    bool ok = true;
    if (const char* v = value("--actors=")) {
      ok = parse_int(v, &args.actors);
    } else if (const char* v = value("--seed=")) {
      ok = parse_u64(v, &args.seed);
    } else if (const char* v = value("--targets=")) {
      ok = parse_int(v, &args.targets);
    } else if (const char* v = value("--cost=")) {
      ok = parse_double(v, &args.cost);
    } else if (const char* v = value("--budget=")) {
      ok = parse_double(v, &args.budget_assets);
    } else if (const char* v = value("--trace=")) {
      args.trace_file = v;
      ok = !args.trace_file.empty();
    } else if (const char* v = value("--profile=")) {
      args.profile_file = v;
      ok = !args.profile_file.empty();
    } else if (const char* v = value("--report=")) {
      args.report_file = v;
      ok = !args.report_file.empty();
    } else if (const char* v = value("--audit=")) {
      args.audit_file = v;
      ok = !args.audit_file.empty();
    } else if (const char* v = value("--metrics-port=")) {
      ok = parse_int(v, &args.metrics_port) && args.metrics_port >= 0 &&
           args.metrics_port <= 65535;
    } else if (const char* v = value("--timeseries=")) {
      args.timeseries_file = v;
      ok = !args.timeseries_file.empty();
    } else if (const char* v = value("--time-limit-ms=")) {
      ok = parse_double(v, &args.time_limit_ms) && args.time_limit_ms >= 0.0;
    } else if (const char* v = value("--warm-start=")) {
      const std::string mode = v;
      ok = mode == "on" || mode == "off";
      if (ok) gridsec::lp::set_warm_start_enabled(mode == "on");
    } else if (const char* v = value("--recovery=")) {
      const std::string mode = v;
      ok = mode == "ladder" || mode == "off";
      if (ok) gridsec::robust::set_recovery_enabled(mode == "ladder");
    } else if (a == "--collab") {
      args.collab = true;
    } else if (a == "--fail-fast") {
      args.fail_fast = true;
    } else if (a == "--metrics") {
      args.metrics = true;
    } else if (a == "--progress") {
      args.progress = true;
    } else {
      std::fprintf(stderr, "gridsec_cli: unknown option '%s'\n", a.c_str());
      return usage();
    }
    if (!ok) {
      std::fprintf(stderr, "gridsec_cli: malformed value in '%s'\n",
                   a.c_str());
      return usage();
    }
  }

  // Every LP solve below runs under the numerical-recovery ladder:
  // a solve that hits kNumericalError escalates rung by rung instead of
  // failing the command (--recovery=off reverts to plain failures).
  gridsec::robust::install_recovery();

  auto parsed = gridsec::flow::read_network_file(args.file);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", args.file.c_str(),
                 parsed.status().to_string().c_str());
    return 1;
  }

  gridsec::obs::RunManifest manifest;
  std::map<std::string, std::int64_t> counters_before;
  if (!args.report_file.empty()) {
    manifest = gridsec::obs::RunManifest::capture("gridsec_cli", argc, argv);
    manifest.seed = args.seed;
    gridsec::obs::sync_alloc_counters();
    counters_before = gridsec::obs::default_registry().counter_values();
  }
  const auto run_start = std::chrono::steady_clock::now();
  if (!args.profile_file.empty()) gridsec::obs::Profiler::start();

  // Live telemetry plane: the endpoint and the sampler both enable the
  // progress tracker, so --metrics-port, --timeseries and --progress each
  // light up progress/ETA accounting in the solver loops.
  gridsec::obs::TelemetryServer server;
  if (args.metrics_port >= 0) {
    gridsec::obs::TelemetryServerOptions server_opts;
    server_opts.port = args.metrics_port;
    const auto started = server.start(server_opts);
    if (!started.is_ok()) {
      std::fprintf(stderr, "cannot start telemetry endpoint: %s\n",
                   started.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: http://127.0.0.1:%d/metrics\n",
                 server.port());
  }
  gridsec::obs::TelemetrySampler sampler;
  if (!args.timeseries_file.empty() || args.progress) {
    gridsec::obs::TelemetrySamplerOptions sampler_opts;
    sampler_opts.progress_to_stderr = args.progress;
    const auto started = sampler.start(sampler_opts);
    if (!started.is_ok()) {
      std::fprintf(stderr, "cannot start telemetry sampler: %s\n",
                   started.to_string().c_str());
      return 1;
    }
  }

  if (!args.audit_file.empty()) {
    gridsec::obs::clear_audit_attribution();
    gridsec::obs::AuditConfig audit_cfg;
    audit_cfg.capture_all = true;  // always have a bundle to write at exit
    gridsec::obs::arm_audit(std::move(audit_cfg));
  }
  if (!args.trace_file.empty()) gridsec::obs::Tracer::start();
  const int rc = run_command(*parsed, args);
  if (sampler.running()) {
    sampler.stop();  // takes the final sample: ring tail == exit registry
    if (!args.timeseries_file.empty()) {
      std::ofstream out(args.timeseries_file);
      if (!out) {
        std::fprintf(stderr, "cannot write timeseries to '%s'\n",
                     args.timeseries_file.c_str());
        return 1;
      }
      const gridsec::obs::Timeseries ts = sampler.snapshot();
      const std::string& f = args.timeseries_file;
      if (f.size() >= 4 && f.compare(f.size() - 4, 4, ".csv") == 0) {
        gridsec::obs::write_timeseries_csv(out, ts);
      } else {
        gridsec::obs::write_timeseries_json(out, ts);
      }
      std::fprintf(stderr, "timeseries: %zu samples -> %s\n",
                   ts.samples.size(), f.c_str());
    }
  }
  server.stop();
  if (!args.profile_file.empty()) {
    gridsec::obs::Profiler::stop();
    const gridsec::obs::Profile profile = gridsec::obs::Profiler::snapshot();
    std::ofstream out(args.profile_file);
    if (!out) {
      std::fprintf(stderr, "cannot write profile to '%s'\n",
                   args.profile_file.c_str());
      return 1;
    }
    gridsec::obs::write_profile_json(out, profile);
    const std::string folded_file = args.profile_file + ".folded";
    std::ofstream folded(folded_file);
    if (folded) gridsec::obs::write_profile_folded(folded, profile);
    std::fprintf(stderr, "profile: %s (+ %s)\n", args.profile_file.c_str(),
                 folded_file.c_str());
  }
  if (!args.audit_file.empty()) {
    // Prefer the first failing solve (that is the one worth explaining);
    // fall back to the last solve observed. Attribution rows were pushed
    // by the command after the plans were known, so re-attach them here.
    gridsec::obs::AuditBundle bundle;
    const bool have = gridsec::obs::first_audit_failure(&bundle) ||
                      gridsec::obs::last_audit_capture(&bundle);
    gridsec::obs::disarm_audit();
    if (!have) {
      std::fprintf(stderr, "no solve observed; no audit bundle written\n");
    } else {
      bundle.attribution = gridsec::obs::audit_attribution();
      const auto written =
          gridsec::obs::write_audit_bundle_file(args.audit_file, bundle);
      if (!written.is_ok()) {
        std::fprintf(stderr, "cannot write audit bundle: %s\n",
                     written.to_string().c_str());
        return 1;
      }
      std::fprintf(stderr, "audit: %s\n", args.audit_file.c_str());
    }
  }
  if (!args.report_file.empty()) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    gridsec::obs::RunReport report;
    manifest.wall_time_seconds = elapsed;
    report.manifest = std::move(manifest);
    const double rep_seconds[] = {elapsed};
    gridsec::obs::sync_alloc_counters();
    report.cases.push_back(gridsec::obs::make_case(
        args.command, /*warmup=*/0, rep_seconds, counters_before,
        gridsec::obs::default_registry().counter_values()));
    std::ofstream out(args.report_file);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   args.report_file.c_str());
      return 1;
    }
    report.write_json(out, &gridsec::obs::default_registry());
    std::fprintf(stderr, "report: %s\n", args.report_file.c_str());
  }
  if (!args.trace_file.empty()) {
    gridsec::obs::Tracer::stop();
    std::ofstream out(args.trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   args.trace_file.c_str());
      return 1;
    }
    gridsec::obs::Tracer::write_chrome_json(out);
    std::fprintf(stderr, "trace: %zu events -> %s\n",
                 gridsec::obs::Tracer::event_count(),
                 args.trace_file.c_str());
  }
  if (args.metrics) {
    gridsec::obs::default_registry().write_json(std::cout);
    std::cout << "\n";
  }
  return rc;
}
