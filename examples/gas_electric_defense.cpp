// The paper's headline scenario end-to-end: the six-state western-US
// gas-electric system with six competing companies, a profit-seeking
// strategic adversary, and collaborative defensive investment.
//
// Run: ./build/examples/gas_electric_defense [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "gridsec/core/game.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  auto m = sim::build_western_us();
  std::printf("western US model: %d hub-assets, %zu long-haul edges\n",
              m.network.num_edges(), m.long_haul.size());

  Rng rng(seed);
  const int n_actors = 6;
  auto own = cps::Ownership::random(m.network.num_edges(), n_actors, rng);

  auto impact = cps::compute_impact_matrix(m.network, own);
  if (!impact.is_ok()) {
    std::printf("impact failed: %s\n", impact.status().to_string().c_str());
    return 1;
  }
  std::printf("base welfare: %.0f\n", impact->base_welfare);
  std::printf("actor profits:");
  for (double p : impact->base_actor_profit) std::printf(" %.0f", p);
  std::printf("\n");

  // The most damaging single outages, system-wide.
  std::printf("\nworst five outages (system welfare change):\n");
  std::vector<int> order(static_cast<std::size_t>(m.network.num_edges()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return impact->matrix.system_impact(a) < impact->matrix.system_impact(b);
  });
  for (int k = 0; k < 5; ++k) {
    const int t = order[static_cast<std::size_t>(k)];
    std::printf("  %-18s %10.0f (owner: actor %d)\n",
                m.network.edge(t).name.c_str(),
                impact->matrix.system_impact(t), own.owner(t));
  }

  // Full attack-defense game with a 6-target adversary and collaborative
  // defense under a shared 12-asset budget.
  core::GameConfig game;
  game.adversary.max_targets = 6;
  game.collaborative = true;
  game.defender.defense_cost.assign(
      static_cast<std::size_t>(m.network.num_edges()), 1.0);
  game.defender.budget.assign(static_cast<std::size_t>(n_actors),
                              12.0 / n_actors);
  game.defender_noise.sigma = 0.05;
  game.speculated_adversary_noise.sigma = 0.05;
  game.pa_samples = 5;

  auto outcome = core::play_defense_game(m.network, own, game, rng);
  if (!outcome.is_ok()) {
    std::printf("game failed: %s\n", outcome.status().to_string().c_str());
    return 1;
  }
  std::printf("\nSA attacks %zu assets:", outcome->attack.targets.size());
  for (int t : outcome->attack.targets) {
    std::printf(" %s", m.network.edge(t).name.c_str());
  }
  std::printf("\ndefenders protected %d assets:",
              outcome->defense.num_defended());
  for (int t = 0; t < m.network.num_edges(); ++t) {
    if (outcome->defense.defended[static_cast<std::size_t>(t)]) {
      std::printf(" %s", m.network.edge(t).name.c_str());
    }
  }
  std::printf("\n\nadversary gain undefended: %10.0f\n",
              outcome->adversary_gain_undefended);
  std::printf("adversary gain defended:   %10.0f\n",
              outcome->adversary_gain_defended);
  std::printf("defense effectiveness:     %10.0f\n",
              outcome->defense_effectiveness);
  std::printf("actor losses (undefended vs defended): %.0f -> %.0f\n",
              outcome->total_loss_undefended(),
              outcome->total_loss_defended());
  return 0;
}
