// Competitors in series (§II-D2): why marginal-cost pricing cannot split a
// chain's profit, and how the paper's negotiation procedure divides it
// roughly 1/N — demonstrated on a pipeline chain built with the library.
//
// Run: ./build/examples/series_market [actors_in_chain]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gridsec/flow/allocation.hpp"
#include "gridsec/flow/series.hpp"
#include "gridsec/sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const int n = argc > 1 ? std::atoi(argv[1]) : 3;

  // Producer (cost 10) -> n transport segments -> consumer (price 40).
  flow::Network net = sim::make_chain(n, /*supply_cost=*/10.0,
                                      /*price=*/40.0, /*capacity=*/50.0,
                                      /*segment_cost=*/1.0);
  // Segment i belongs to actor i; producer/consumer sides to actor n.
  std::vector<int> owners(static_cast<std::size_t>(net.num_edges()), n);
  for (int i = 0; i < n; ++i) {
    owners[static_cast<std::size_t>(1 + i)] = i;  // edge 0 is the supply
  }

  auto alloc = flow::allocate_profits(net, owners, n + 1);
  std::printf("chain welfare: %.1f\n", alloc.welfare);
  std::printf("LMP allocation of the transporters:\n");
  for (int i = 0; i < n; ++i) {
    std::printf("  actor %d: %8.1f\n", i,
                alloc.actor_profit[static_cast<std::size_t>(i)]);
  }
  std::printf(
      "(duals hand the whole margin to one point of the degenerate chain)\n");

  std::vector<int> chain_actors;
  auto chain = flow::extract_series_chain(net, owners, &chain_actors);
  if (!chain.is_ok()) {
    std::printf("chain extraction failed: %s\n",
                chain.status().to_string().c_str());
    return 1;
  }
  auto shares = flow::negotiate_series_profits(*chain);
  std::printf(
      "\nnegotiated split (margin %.1f/unit, flow %.0f, %d iterations):\n",
      shares.chain_margin, chain->flow, shares.iterations);
  for (std::size_t i = 0; i < shares.actor_profit.size(); ++i) {
    std::printf("  actor %d: %8.1f  (markup %.2f/unit)\n",
                chain_actors[i], shares.actor_profit[i], shares.markup[i]);
  }
  std::printf("\neach of the %d actors ends up with ~1/%d of the margin —\n"
              "the paper's stated outcome for competitors in series.\n",
              n, n);
  return 0;
}
