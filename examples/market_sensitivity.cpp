// Post-optimal sensitivity analysis of the western-US energy market: how
// robust are the current prices and dispatch to data changes?
//
// Uses the LP ranging machinery (lp::analyze_sensitivity) on the social-
// welfare program: objective ranging tells how far a generator's cost can
// drift before the dispatch changes; rhs ranging on a hub's conservation
// row tells how much net injection the current price regime tolerates.
//
// Run: ./build/examples/market_sensitivity
#include <cmath>
#include <cstdio>

#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/sim/western_us.hpp"

int main() {
  using namespace gridsec;
  auto m = sim::build_western_us();
  lp::Problem p = flow::build_social_welfare_lp(m.network);
  auto report = lp::analyze_sensitivity(p);
  if (report.solution.status != lp::SolveStatus::kOptimal) {
    std::printf("solve failed\n");
    return 1;
  }
  std::printf("welfare: %.0f\n\n", -report.solution.objective);

  std::printf("dispatch-stability of generator costs (supply edges):\n");
  std::printf("%-22s %10s %12s %12s\n", "asset", "cost", "stable_from",
              "stable_to");
  int shown = 0;
  for (int e = 0; e < m.network.num_edges() && shown < 12; ++e) {
    const auto& edge = m.network.edge(e);
    if (edge.kind != flow::EdgeKind::kSupply) continue;
    const auto& r = report.objective_range[static_cast<std::size_t>(e)];
    std::printf("%-22s %10.2f %12.2f %12.2f\n", edge.name.c_str(), edge.cost,
                std::isfinite(r.lo) ? r.lo : -999.0,
                std::isfinite(r.hi) ? r.hi : 999.0);
    ++shown;
  }

  std::printf(
      "\ninjection tolerance of hub prices (rhs ranging of conservation):\n");
  std::printf("%-12s %10s %14s %14s\n", "hub", "LMP", "withdraw_room",
              "inject_room");
  auto sw = flow::solve_social_welfare(m.network);
  int row = 0;
  for (int n = 0; n < m.network.num_nodes(); ++n) {
    if (m.network.node(n).kind != flow::NodeKind::kHub) continue;
    if (m.network.out_edges(n).empty() && m.network.in_edges(n).empty()) {
      continue;
    }
    const auto& r = report.rhs_range[static_cast<std::size_t>(row)];
    // rhs = outflow - inflow: raising it = net withdrawal, lowering it =
    // net injection. The range tells how much of each the basis survives.
    std::printf("%-12s %10.2f %14.2f %14.2f\n",
                m.network.node(n).name.c_str(),
                sw.node_price[static_cast<std::size_t>(n)],
                std::isfinite(r.hi) ? r.hi : 999.0,
                std::isfinite(r.lo) ? -r.lo : 999.0);
    ++row;
  }
  std::printf(
      "\nreading: a hub with tiny rooms sits on a dispatch breakpoint — its\n"
      "LMP flips with the smallest perturbation; an attacker needs almost\n"
      "no capacity change there to move prices.\n");
  return 0;
}
