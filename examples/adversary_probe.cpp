// Deception as defense: how the strategic adversary's realized profit
// decays with its knowledge noise while its *anticipated* profit does not —
// the overconfidence gap of the paper's Figure 4, as a single-scenario
// walkthrough you can rerun with different seeds and actor counts.
//
// Run: ./build/examples/adversary_probe [actors] [seed]
#include <cstdio>
#include <cstdlib>

#include "gridsec/core/adversary.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const int n_actors = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  auto m = sim::build_western_us();
  Rng rng(seed);
  auto own = cps::Ownership::random(m.network.num_edges(), n_actors, rng);
  auto truth = cps::compute_impact_matrix(m.network, own);
  if (!truth.is_ok()) {
    std::printf("impact failed: %s\n", truth.status().to_string().c_str());
    return 1;
  }

  core::AdversaryConfig cfg;
  cfg.max_targets = 6;
  core::StrategicAdversary sa(cfg);

  std::printf("%d actors; sweeping the SA's knowledge noise\n\n", n_actors);
  std::printf("%8s %14s %14s %14s\n", "sigma", "anticipated", "observed",
              "overconfidence");
  for (double sigma : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    cps::NoiseSpec noise;
    noise.sigma = sigma;
    // Average a few noise realizations at this knowledge level.
    double anticipated = 0.0, observed = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      flow::Network view = cps::perturb_knowledge(m.network, noise, rng);
      auto believed = cps::compute_impact_matrix(view, own);
      if (!believed.is_ok()) return 1;
      auto plan = sa.plan(believed->matrix);
      anticipated += plan.anticipated_return / reps;
      observed += core::realized_return(truth->matrix, plan, cfg) / reps;
    }
    std::printf("%8.2f %14.0f %14.0f %14.0f\n", sigma, anticipated, observed,
                anticipated - observed);
  }
  std::printf(
      "\nThe widening gap is the paper's deception-defense insight: an\n"
      "attacker fed bad data keeps expecting full returns but realizes\n"
      "far less.\n");
  return 0;
}
