// gridsec-inspect — render and validate gridsec.audit_bundle artifacts and
// gridsec.profile self-profiles.
//
//   gridsec-inspect [options] BUNDLE.json       human-readable solve narrative
//   gridsec-inspect --validate BUNDLE.json      recompute the certificate
//   gridsec-inspect profile [options] PROF.json rank phases by exclusive cost
//
// Profile mode options:
//   --top=N             rows to show (default 10)
//   --weight=W          ranking weight: wall (default), cpu, allocs, bytes
//
// Rendering explains a solve after the fact: what was solved, what the
// solver answered, which constraints were binding (and their shadow
// prices), the per-actor attribution the pipeline attached (why the SA
// picked its target set, how the defender split its budget), the
// certificate verdict, and the structured-log tail leading up to the solve.
//
// --validate does not trust the stored certificate: the bundle embeds the
// full problem and solution, so the certificate is recomputed from scratch
// and compared against the recorded verdict.
//
// Options:
//   --tail=N    log lines to show (default 10; 0 = none)
//   --quiet     suppress the log tail and non-binding detail
//
// Exit codes mirror gridsec-benchdiff: 0 = bundle is valid (and, under
// --validate, the recomputed certificate passes), 1 = bundle parses but
// the certificate fails, 2 = usage or parse error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gridsec/obs/audit.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/util/table.hpp"

namespace {

using namespace gridsec;

int usage() {
  std::fprintf(
      stderr,
      "usage: gridsec-inspect [--tail=N] [--quiet] BUNDLE.json\n"
      "       gridsec-inspect --validate BUNDLE.json\n"
      "       gridsec-inspect profile [--top=N] "
      "[--weight=wall|cpu|allocs|bytes] PROF.json\n");
  return 2;
}

bool parse_size_flag(const char* s, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || std::strchr(s, '-') != nullptr) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

void print_summary(const obs::AuditBundle& b) {
  const lp::Problem& p = b.problem;
  const lp::Solution& s = b.solution;
  std::printf("audit bundle v%d — context %s, trigger %s, created %s\n",
              b.version, b.context.c_str(), b.trigger.c_str(),
              b.created_utc.c_str());
  std::printf(
      "problem: %s %d vars (%s), %d constraints\n",
      p.objective() == lp::Objective::kMaximize ? "maximize" : "minimize",
      p.num_variables(),
      p.has_integer_variables() ? "mixed-integer" : "continuous",
      p.num_constraints());
  std::printf("solve:   status %s, objective %.9g, %ld pivots\n",
              std::string(lp::to_string(s.status)).c_str(), s.objective,
              s.iterations);
  if (s.bnb.nodes_explored > 0 || s.bnb.lp_solves > 0) {
    std::printf(
        "         branch-and-bound: %ld nodes, %ld LP solves, %ld "
        "incumbent updates\n",
        s.bnb.nodes_explored, s.bnb.lp_solves, s.bnb.incumbent_updates);
  }
  if (!s.recovery_trail.empty()) {
    std::printf("recovery ladder (%zu rungs attempted):\n",
                s.recovery_trail.size());
    for (std::size_t i = 0; i < s.recovery_trail.size(); ++i) {
      const lp::RecoveryStepInfo& step = s.recovery_trail[i];
      std::printf("  %zu. %-14s %-16s %s\n", i + 1, step.rung.c_str(),
                  std::string(lp::to_string(step.status)).c_str(),
                  step.certified ? "certified — answer adopted" : "");
    }
  }
}

void print_certificate(const obs::Certificate& c, const char* label) {
  std::printf("%s: %s%s\n", label,
              std::string(obs::to_string(c.verdict)).c_str(),
              c.milp ? " (milp)" : "");
  Table t({"check", "residual"});
  t.add_row({"primal feasibility", format_double(c.primal_residual, 3)});
  t.add_row({"variable bounds", format_double(c.bound_residual, 3)});
  if (!c.milp) {
    t.add_row({"dual signs", format_double(c.dual_residual, 3)});
    t.add_row({"reduced costs", format_double(c.reduced_cost_residual, 3)});
    t.add_row(
        {"complementary slackness", format_double(c.complementary_slackness, 3)});
    t.add_row({"duality gap", format_double(c.duality_gap, 3)});
  } else {
    t.add_row({"integrality", format_double(c.integrality_residual, 3)});
  }
  t.add_row({"objective consistency", format_double(c.objective_residual, 3)});
  t.print(std::cout);
  for (const std::string& v : c.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
}

void print_binding(const obs::AuditBundle& b) {
  if (b.binding.empty()) {
    std::printf("\nbinding constraints: none\n");
    return;
  }
  std::printf("\nbinding constraints (%zu):\n", b.binding.size());
  Table t({"row", "name", "sense", "rhs", "shadow price"});
  constexpr std::size_t kMaxRows = 24;
  for (std::size_t i = 0; i < b.binding.size() && i < kMaxRows; ++i) {
    const obs::BindingConstraint& bc = b.binding[i];
    t.add_row({std::to_string(bc.row), bc.name, bc.sense,
               format_double(bc.rhs, 4), format_double(bc.dual, 6)});
  }
  t.print(std::cout);
  if (b.binding.size() > kMaxRows) {
    std::printf("  ... %zu more binding rows elided\n",
                b.binding.size() - kMaxRows);
  }
}

void print_attribution(const obs::AuditBundle& b) {
  if (b.attribution.empty()) return;
  std::printf("\nattribution:\n");
  for (const obs::AttributionRow& row : b.attribution) {
    std::printf("  %-28s %s\n", row.key.c_str(), row.note.c_str());
  }
}

void print_log_tail(const obs::AuditBundle& b, std::size_t tail) {
  if (tail == 0 || b.log_tail.empty()) return;
  const std::size_t n = std::min(tail, b.log_tail.size());
  std::printf("\nlog tail (last %zu of %zu records):\n", n,
              b.log_tail.size());
  for (std::size_t i = b.log_tail.size() - n; i < b.log_tail.size(); ++i) {
    std::printf("  %s\n", b.log_tail[i].c_str());
  }
}

bool parse_weight(const std::string& s, obs::ProfileWeight* out) {
  if (s == "wall") *out = obs::ProfileWeight::kWallMicros;
  else if (s == "cpu") *out = obs::ProfileWeight::kCpuMicros;
  else if (s == "allocs") *out = obs::ProfileWeight::kAllocCount;
  else if (s == "bytes") *out = obs::ProfileWeight::kAllocBytes;
  else return false;
  return true;
}

const char* weight_column(obs::ProfileWeight w) {
  switch (w) {
    case obs::ProfileWeight::kWallMicros: return "excl wall (us)";
    case obs::ProfileWeight::kCpuMicros: return "excl cpu (us)";
    case obs::ProfileWeight::kAllocCount: return "allocs";
    case obs::ProfileWeight::kAllocBytes: return "alloc bytes";
  }
  return "?";
}

int cmd_profile(int argc, char** argv) {
  std::size_t top = 10;
  obs::ProfileWeight weight = obs::ProfileWeight::kWallMicros;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.compare(0, 6, "--top=") == 0) {
      if (!parse_size_flag(a.c_str() + 6, &top)) return usage();
    } else if (a.compare(0, 9, "--weight=") == 0) {
      if (!parse_weight(a.substr(9), &weight)) return usage();
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "gridsec-inspect: unknown option '%s'\n",
                   a.c_str());
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 1) return usage();

  std::ifstream in(files[0]);
  if (!in) {
    std::fprintf(stderr, "gridsec-inspect: cannot open '%s'\n",
                 files[0].c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const StatusOr<obs::Profile> loaded = obs::parse_profile(buf.str());
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "gridsec-inspect: %s: %s\n", files[0].c_str(),
                 loaded.status().to_string().c_str());
    return 2;
  }
  const obs::Profile& p = loaded.value();

  std::printf(
      "profile v%d — %lld recording thread%s, %lld allocs / %lld bytes "
      "(peak rss of heap %lld)\n",
      p.schema_version, static_cast<long long>(p.threads),
      p.threads == 1 ? "" : "s", static_cast<long long>(p.alloc.count),
      static_cast<long long>(p.alloc.bytes),
      static_cast<long long>(p.alloc.peak_bytes));
  if (p.pool_busy_ns > 0 || p.pool_idle_ns > 0) {
    const double busy_ms = static_cast<double>(p.pool_busy_ns) / 1e6;
    const double idle_ms = static_cast<double>(p.pool_idle_ns) / 1e6;
    const double util =
        busy_ms + idle_ms > 0.0 ? 100.0 * busy_ms / (busy_ms + idle_ms) : 0.0;
    std::printf("thread pool: busy %.1f ms, idle %.1f ms (%.0f%% utilized)\n",
                busy_ms, idle_ms, util);
  }

  std::vector<obs::ProfileRow> rows = obs::flatten_profile(p);
  std::stable_sort(rows.begin(), rows.end(),
                   [weight](const obs::ProfileRow& a,
                            const obs::ProfileRow& b) {
                     return obs::profile_weight_value(*a.node, weight) >
                            obs::profile_weight_value(*b.node, weight);
                   });
  std::printf("\ntop phases by %s:\n", weight_column(weight));
  Table t({"phase", "count", "excl wall (us)", "incl wall (us)",
           "excl cpu (us)", "allocs", "alloc bytes"});
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    const obs::ProfileNode& n = *rows[i].node;
    t.add_row({rows[i].path, std::to_string(n.count),
               std::to_string(n.excl_wall_ns / 1000),
               std::to_string(n.wall_ns / 1000),
               std::to_string(n.excl_cpu_ns / 1000),
               std::to_string(n.alloc_count),
               std::to_string(n.alloc_bytes)});
  }
  t.print(std::cout);
  if (rows.size() > top) {
    std::printf("  ... %zu more phases elided (--top=N)\n",
                rows.size() - top);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "profile") == 0) {
    return cmd_profile(argc, argv);
  }
  bool validate_only = false;
  bool quiet = false;
  std::size_t tail = 10;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.compare(0, 7, "--tail=") == 0) {
      if (!parse_size_flag(a.c_str() + 7, &tail)) return usage();
    } else if (a == "--validate") {
      validate_only = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "gridsec-inspect: unknown option '%s'\n",
                   a.c_str());
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 1) return usage();

  const StatusOr<obs::AuditBundle> loaded =
      obs::read_audit_bundle_file(files[0]);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "gridsec-inspect: %s: %s\n", files[0].c_str(),
                 loaded.status().to_string().c_str());
    return 2;
  }
  const obs::AuditBundle& bundle = loaded.value();

  if (validate_only) {
    // Recompute from the embedded problem + solution; never trust the
    // stored verdict. The context decides whether integer variables were
    // relaxed at this solve site (the same rule the writer applied).
    obs::CertifyOptions opts;
    opts.relaxation = obs::context_is_relaxation(bundle.context);
    const obs::Certificate fresh =
        obs::certify(bundle.problem, bundle.solution, opts);
    std::printf("%s: parsed gridsec.audit_bundle v%d (context %s)\n",
                files[0].c_str(), bundle.version, bundle.context.c_str());
    print_certificate(fresh, "recomputed certificate");
    if (fresh.verdict != bundle.certificate.verdict) {
      std::printf(
          "note: stored verdict was '%s' — recomputation disagrees\n",
          std::string(obs::to_string(bundle.certificate.verdict)).c_str());
    }
    if (!fresh.ok()) {
      std::printf("verdict: CERTIFICATE FAILED\n");
      return 1;
    }
    std::printf("verdict: OK\n");
    return 0;
  }

  print_summary(bundle);
  std::printf("\n");
  print_certificate(bundle.certificate, "certificate");
  if (!quiet) {
    print_binding(bundle);
    print_attribution(bundle);
    print_log_tail(bundle, tail);
  }
  return bundle.certificate.ok() ? 0 : 1;
}
