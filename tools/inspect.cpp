// gridsec-inspect — render and validate gridsec.audit_bundle artifacts,
// gridsec.profile self-profiles, and gridsec.timeseries telemetry.
//
//   gridsec-inspect [options] BUNDLE.json       human-readable solve narrative
//   gridsec-inspect --validate BUNDLE.json      recompute the certificate
//   gridsec-inspect profile [options] PROF.json rank phases by exclusive cost
//   gridsec-inspect top TIMESERIES.json         render a recorded timeseries
//   gridsec-inspect top --port=P                live view: poll /metrics
//
// Profile mode options:
//   --top=N             rows to show (default 10)
//   --weight=W          ranking weight: wall (default), cpu, allocs, bytes
//
// Top mode options (live view polls http://127.0.0.1:P/metrics, the
// embedded endpoint from --metrics-port):
//   --refresh-ms=N      poll cadence (default 1000)
//   --iterations=N      stop after N polls (default: until interrupted)
//   --once              single poll, no screen clearing (= --iterations=1)
//   --plain             never emit ANSI clear sequences (default when
//                       stdout is not a TTY)
//
// Rendering explains a solve after the fact: what was solved, what the
// solver answered, which constraints were binding (and their shadow
// prices), the per-actor attribution the pipeline attached (why the SA
// picked its target set, how the defender split its budget), the
// certificate verdict, and the structured-log tail leading up to the solve.
//
// --validate does not trust the stored certificate: the bundle embeds the
// full problem and solution, so the certificate is recomputed from scratch
// and compared against the recorded verdict.
//
// Options:
//   --tail=N    log lines to show (default 10; 0 = none)
//   --quiet     suppress the log tail and non-binding detail
//
// Exit codes mirror gridsec-benchdiff: 0 = bundle is valid (and, under
// --validate, the recomputed certificate passes), 1 = bundle parses but
// the certificate fails, 2 = usage or parse error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gridsec/obs/audit.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/obs/telemetry.hpp"
#include "gridsec/util/table.hpp"

namespace {

using namespace gridsec;

int usage() {
  std::fprintf(
      stderr,
      "usage: gridsec-inspect [--tail=N] [--quiet] BUNDLE.json\n"
      "       gridsec-inspect --validate BUNDLE.json\n"
      "       gridsec-inspect profile [--top=N] "
      "[--weight=wall|cpu|allocs|bytes] PROF.json\n"
      "       gridsec-inspect top [--plain] TIMESERIES.json\n"
      "       gridsec-inspect top --port=P [--refresh-ms=N] "
      "[--iterations=N] [--once] [--plain]\n");
  return 2;
}

bool parse_size_flag(const char* s, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || std::strchr(s, '-') != nullptr) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

void print_summary(const obs::AuditBundle& b) {
  const lp::Problem& p = b.problem;
  const lp::Solution& s = b.solution;
  std::printf("audit bundle v%d — context %s, trigger %s, created %s\n",
              b.version, b.context.c_str(), b.trigger.c_str(),
              b.created_utc.c_str());
  std::printf(
      "problem: %s %d vars (%s), %d constraints\n",
      p.objective() == lp::Objective::kMaximize ? "maximize" : "minimize",
      p.num_variables(),
      p.has_integer_variables() ? "mixed-integer" : "continuous",
      p.num_constraints());
  std::printf("solve:   status %s, objective %.9g, %ld pivots\n",
              std::string(lp::to_string(s.status)).c_str(), s.objective,
              s.iterations);
  if (s.bnb.nodes_explored > 0 || s.bnb.lp_solves > 0) {
    std::printf(
        "         branch-and-bound: %ld nodes, %ld LP solves, %ld "
        "incumbent updates\n",
        s.bnb.nodes_explored, s.bnb.lp_solves, s.bnb.incumbent_updates);
  }
  if (!s.recovery_trail.empty()) {
    std::printf("recovery ladder (%zu rungs attempted):\n",
                s.recovery_trail.size());
    for (std::size_t i = 0; i < s.recovery_trail.size(); ++i) {
      const lp::RecoveryStepInfo& step = s.recovery_trail[i];
      std::printf("  %zu. %-14s %-16s %s\n", i + 1, step.rung.c_str(),
                  std::string(lp::to_string(step.status)).c_str(),
                  step.certified ? "certified — answer adopted" : "");
    }
  }
}

void print_certificate(const obs::Certificate& c, const char* label) {
  std::printf("%s: %s%s\n", label,
              std::string(obs::to_string(c.verdict)).c_str(),
              c.milp ? " (milp)" : "");
  Table t({"check", "residual"});
  t.add_row({"primal feasibility", format_double(c.primal_residual, 3)});
  t.add_row({"variable bounds", format_double(c.bound_residual, 3)});
  if (!c.milp) {
    t.add_row({"dual signs", format_double(c.dual_residual, 3)});
    t.add_row({"reduced costs", format_double(c.reduced_cost_residual, 3)});
    t.add_row(
        {"complementary slackness", format_double(c.complementary_slackness, 3)});
    t.add_row({"duality gap", format_double(c.duality_gap, 3)});
  } else {
    t.add_row({"integrality", format_double(c.integrality_residual, 3)});
  }
  t.add_row({"objective consistency", format_double(c.objective_residual, 3)});
  t.print(std::cout);
  for (const std::string& v : c.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
}

void print_binding(const obs::AuditBundle& b) {
  if (b.binding.empty()) {
    std::printf("\nbinding constraints: none\n");
    return;
  }
  std::printf("\nbinding constraints (%zu):\n", b.binding.size());
  Table t({"row", "name", "sense", "rhs", "shadow price"});
  constexpr std::size_t kMaxRows = 24;
  for (std::size_t i = 0; i < b.binding.size() && i < kMaxRows; ++i) {
    const obs::BindingConstraint& bc = b.binding[i];
    t.add_row({std::to_string(bc.row), bc.name, bc.sense,
               format_double(bc.rhs, 4), format_double(bc.dual, 6)});
  }
  t.print(std::cout);
  if (b.binding.size() > kMaxRows) {
    std::printf("  ... %zu more binding rows elided\n",
                b.binding.size() - kMaxRows);
  }
}

void print_attribution(const obs::AuditBundle& b) {
  if (b.attribution.empty()) return;
  std::printf("\nattribution:\n");
  for (const obs::AttributionRow& row : b.attribution) {
    std::printf("  %-28s %s\n", row.key.c_str(), row.note.c_str());
  }
}

void print_log_tail(const obs::AuditBundle& b, std::size_t tail) {
  if (tail == 0 || b.log_tail.empty()) return;
  const std::size_t n = std::min(tail, b.log_tail.size());
  std::printf("\nlog tail (last %zu of %zu records):\n", n,
              b.log_tail.size());
  for (std::size_t i = b.log_tail.size() - n; i < b.log_tail.size(); ++i) {
    std::printf("  %s\n", b.log_tail[i].c_str());
  }
}

bool parse_weight(const std::string& s, obs::ProfileWeight* out) {
  if (s == "wall") *out = obs::ProfileWeight::kWallMicros;
  else if (s == "cpu") *out = obs::ProfileWeight::kCpuMicros;
  else if (s == "allocs") *out = obs::ProfileWeight::kAllocCount;
  else if (s == "bytes") *out = obs::ProfileWeight::kAllocBytes;
  else return false;
  return true;
}

const char* weight_column(obs::ProfileWeight w) {
  switch (w) {
    case obs::ProfileWeight::kWallMicros: return "excl wall (us)";
    case obs::ProfileWeight::kCpuMicros: return "excl cpu (us)";
    case obs::ProfileWeight::kAllocCount: return "allocs";
    case obs::ProfileWeight::kAllocBytes: return "alloc bytes";
  }
  return "?";
}

int cmd_profile(int argc, char** argv) {
  std::size_t top = 10;
  obs::ProfileWeight weight = obs::ProfileWeight::kWallMicros;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.compare(0, 6, "--top=") == 0) {
      if (!parse_size_flag(a.c_str() + 6, &top)) return usage();
    } else if (a.compare(0, 9, "--weight=") == 0) {
      if (!parse_weight(a.substr(9), &weight)) return usage();
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "gridsec-inspect: unknown option '%s'\n",
                   a.c_str());
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 1) return usage();

  std::ifstream in(files[0]);
  if (!in) {
    std::fprintf(stderr, "gridsec-inspect: cannot open '%s'\n",
                 files[0].c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const StatusOr<obs::Profile> loaded = obs::parse_profile(buf.str());
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "gridsec-inspect: %s: %s\n", files[0].c_str(),
                 loaded.status().to_string().c_str());
    return 2;
  }
  const obs::Profile& p = loaded.value();

  std::printf(
      "profile v%d — %lld recording thread%s, %lld allocs / %lld bytes "
      "(peak rss of heap %lld)\n",
      p.schema_version, static_cast<long long>(p.threads),
      p.threads == 1 ? "" : "s", static_cast<long long>(p.alloc.count),
      static_cast<long long>(p.alloc.bytes),
      static_cast<long long>(p.alloc.peak_bytes));
  if (p.pool_busy_ns > 0 || p.pool_idle_ns > 0) {
    const double busy_ms = static_cast<double>(p.pool_busy_ns) / 1e6;
    const double idle_ms = static_cast<double>(p.pool_idle_ns) / 1e6;
    const double util =
        busy_ms + idle_ms > 0.0 ? 100.0 * busy_ms / (busy_ms + idle_ms) : 0.0;
    std::printf("thread pool: busy %.1f ms, idle %.1f ms (%.0f%% utilized)\n",
                busy_ms, idle_ms, util);
  }

  std::vector<obs::ProfileRow> rows = obs::flatten_profile(p);
  std::stable_sort(rows.begin(), rows.end(),
                   [weight](const obs::ProfileRow& a,
                            const obs::ProfileRow& b) {
                     return obs::profile_weight_value(*a.node, weight) >
                            obs::profile_weight_value(*b.node, weight);
                   });
  std::printf("\ntop phases by %s:\n", weight_column(weight));
  Table t({"phase", "count", "excl wall (us)", "incl wall (us)",
           "excl cpu (us)", "allocs", "alloc bytes"});
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    const obs::ProfileNode& n = *rows[i].node;
    t.add_row({rows[i].path, std::to_string(n.count),
               std::to_string(n.excl_wall_ns / 1000),
               std::to_string(n.wall_ns / 1000),
               std::to_string(n.excl_cpu_ns / 1000),
               std::to_string(n.alloc_count),
               std::to_string(n.alloc_bytes)});
  }
  t.print(std::cout);
  if (rows.size() > top) {
    std::printf("  ... %zu more phases elided (--top=N)\n",
                rows.size() - top);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `top` mode: render a gridsec.timeseries artifact, or poll a live
// /metrics endpoint, as a refreshing terminal table.

/// Blocking one-shot HTTP GET against 127.0.0.1:port. Returns the response
/// body (headers stripped) or an error Status. Lives here — not in the
/// library — so gridsec-inspect can poll an endpoint even in builds where
/// the server side is compiled out (GRIDSEC_NO_SERVE).
StatusOr<std::string> http_get_local(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::not_found("cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    // MSG_NOSIGNAL: a server that closes early must yield EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return Status::internal("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return Status::internal("recv() failed");
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::invalid_argument("malformed HTTP response");
  }
  return response.substr(header_end + 4);
}

/// Parses OpenMetrics sample lines into {metric-with-labels -> value},
/// ignoring comment lines and the EOF marker.
std::map<std::string, double> parse_openmetrics_values(
    const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0) continue;
    char* end = nullptr;
    const double v = std::strtod(line.c_str() + space + 1, &end);
    if (end == line.c_str() + space + 1) continue;
    out.emplace(line.substr(0, space), v);
  }
  return out;
}

std::string format_rate(double per_second) {
  return format_double(per_second, 1) + "/s";
}

std::string format_eta(double eta_seconds) {
  if (eta_seconds < 0.0) return "?";
  return format_double(eta_seconds, 1) + "s";
}

void print_progress_rows(const std::vector<obs::ProgressSnapshot>& rows) {
  if (rows.empty()) return;
  std::printf("\nprogress:\n");
  Table t({"scope", "done", "total", "rate", "eta", ""});
  for (const obs::ProgressSnapshot& p : rows) {
    t.add_row({p.name, std::to_string(p.done),
               p.total > 0 ? std::to_string(p.total) : "?",
               format_rate(p.rate_per_second), format_eta(p.eta_seconds),
               p.stalled ? "STALLED" : ""});
  }
  t.print(std::cout);
}

/// Renders one recorded timeseries: header, counter rates over the final
/// inter-sample window, gauges, worker utilization, and progress scopes.
int top_file(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "gridsec-inspect: cannot open '%s'\n", file.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const StatusOr<obs::Timeseries> loaded = obs::parse_timeseries(buf.str());
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "gridsec-inspect: %s: %s\n", file.c_str(),
                 loaded.status().to_string().c_str());
    return 2;
  }
  const obs::Timeseries& ts = loaded.value();
  std::printf(
      "gridsec.timeseries v%d — started %s, cadence %s ms, %zu samples "
      "(%llu dropped)\n",
      ts.schema_version, ts.start_time_utc.c_str(),
      format_double(ts.cadence_ms, 1).c_str(), ts.samples.size(),
      static_cast<unsigned long long>(ts.dropped));
  std::printf("build: %s %s %s\n", ts.build.git_sha.c_str(),
              ts.build.build_type.c_str(), ts.build.compiler.c_str());
  if (ts.samples.empty()) return 0;

  const obs::TelemetrySample& last = ts.samples.back();
  const obs::TelemetrySample* prev =
      ts.samples.size() >= 2 ? &ts.samples[ts.samples.size() - 2] : nullptr;
  const double dt = prev != nullptr ? last.t_seconds - prev->t_seconds : 0.0;
  std::printf("window: t=%s s%s\n", format_double(last.t_seconds, 3).c_str(),
              prev != nullptr
                  ? (" (rates over the last " + format_double(dt, 3) + " s)")
                        .c_str()
                  : "");

  std::printf("\ncounters:\n");
  Table counters({"counter", "value", "rate"});
  for (const auto& [name, value] : last.counters) {
    double rate = 0.0;
    if (prev != nullptr && dt > 0.0) {
      const auto it = prev->counters.find(name);
      const std::int64_t before = it != prev->counters.end() ? it->second : 0;
      rate = static_cast<double>(value - before) / dt;
    }
    counters.add_row({name, std::to_string(value), format_rate(rate)});
  }
  counters.print(std::cout);

  if (!last.gauges.empty()) {
    std::printf("\ngauges:\n");
    Table gauges({"gauge", "value"});
    for (const auto& [name, value] : last.gauges) {
      gauges.add_row({name, format_double(value, 6)});
    }
    gauges.print(std::cout);
  }

  if (!last.workers.empty()) {
    std::printf("\nworkers:\n");
    Table workers({"pool", "worker", "busy (ms)", "util", "tasks"});
    for (const obs::WorkerSample& w : last.workers) {
      const double busy_ms = static_cast<double>(w.busy_ns) / 1e6;
      const double total_ns = static_cast<double>(w.busy_ns + w.idle_ns);
      const double util =
          total_ns > 0.0 ? 100.0 * static_cast<double>(w.busy_ns) / total_ns
                         : 0.0;
      workers.add_row({std::to_string(w.pool), std::to_string(w.worker),
                       format_double(busy_ms, 1),
                       format_double(util, 1) + "%",
                       std::to_string(w.tasks)});
    }
    workers.print(std::cout);
  }

  print_progress_rows(last.progress);
  return 0;
}

/// Polls GET /metrics and renders values + rates computed against the
/// previous poll. Clears the screen between refreshes on a TTY.
int top_live(int port, double refresh_ms, std::size_t iterations,
             bool plain) {
  const bool clear_screen = !plain && ::isatty(STDOUT_FILENO) != 0;
  std::map<std::string, double> prev;
  auto prev_time = std::chrono::steady_clock::now();
  for (std::size_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          refresh_ms));
    }
    const StatusOr<std::string> body = http_get_local(port, "/metrics");
    if (!body.is_ok()) {
      std::fprintf(stderr, "gridsec-inspect: %s\n",
                   body.status().to_string().c_str());
      return 2;
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - prev_time).count();
    const std::map<std::string, double> values =
        parse_openmetrics_values(body.value());
    if (clear_screen) std::printf("\x1b[2J\x1b[H");
    std::printf("gridsec-top — 127.0.0.1:%d/metrics, poll %zu, %zu series\n",
                port, i + 1, values.size());
    Table t({"metric", "value", "rate"});
    constexpr std::size_t kMaxRows = 40;
    std::size_t shown = 0;
    for (const auto& [name, value] : values) {
      if (shown == kMaxRows) break;
      std::string rate = "";
      const auto it = prev.find(name);
      // Rates only make sense for cumulative series; OpenMetrics counters
      // all carry the _total suffix (possibly before a label set).
      if (it != prev.end() && dt > 0.0 &&
          (name.find("_total{") != std::string::npos ||
           (name.size() >= 6 &&
            name.compare(name.size() - 6, 6, "_total") == 0))) {
        rate = format_rate((value - it->second) / dt);
      }
      t.add_row({name, format_double(value, 6), rate});
      ++shown;
    }
    t.print(std::cout);
    if (values.size() > kMaxRows) {
      std::printf("  ... %zu more series elided\n", values.size() - kMaxRows);
    }
    std::fflush(stdout);
    prev = values;
    prev_time = now;
  }
  return 0;
}

int cmd_top(int argc, char** argv) {
  double refresh_ms = 1000.0;
  std::size_t iterations = 0;
  bool plain = false;
  int port = -1;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.compare(0, 7, "--port=") == 0) {
      char* end = nullptr;
      const long v = std::strtol(a.c_str() + 7, &end, 10);
      if (end == a.c_str() + 7 || *end != '\0' || v < 0 || v > 65535) {
        return usage();
      }
      port = static_cast<int>(v);
    } else if (a.compare(0, 13, "--refresh-ms=") == 0) {
      char* end = nullptr;
      refresh_ms = std::strtod(a.c_str() + 13, &end);
      if (end == a.c_str() + 13 || *end != '\0' || refresh_ms <= 0.0) {
        return usage();
      }
    } else if (a.compare(0, 13, "--iterations=") == 0) {
      if (!parse_size_flag(a.c_str() + 13, &iterations) || iterations == 0) {
        return usage();
      }
    } else if (a == "--once") {
      iterations = 1;
    } else if (a == "--plain") {
      plain = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "gridsec-inspect: unknown option '%s'\n",
                   a.c_str());
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (port >= 0) {
    if (!files.empty()) return usage();
    return top_live(port, refresh_ms, iterations, plain);
  }
  if (files.size() != 1) return usage();
  return top_file(files[0]);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "profile") == 0) {
    return cmd_profile(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "top") == 0) {
    return cmd_top(argc, argv);
  }
  bool validate_only = false;
  bool quiet = false;
  std::size_t tail = 10;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.compare(0, 7, "--tail=") == 0) {
      if (!parse_size_flag(a.c_str() + 7, &tail)) return usage();
    } else if (a == "--validate") {
      validate_only = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "gridsec-inspect: unknown option '%s'\n",
                   a.c_str());
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 1) return usage();

  const StatusOr<obs::AuditBundle> loaded =
      obs::read_audit_bundle_file(files[0]);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "gridsec-inspect: %s: %s\n", files[0].c_str(),
                 loaded.status().to_string().c_str());
    return 2;
  }
  const obs::AuditBundle& bundle = loaded.value();

  if (validate_only) {
    // Recompute from the embedded problem + solution; never trust the
    // stored verdict. The context decides whether integer variables were
    // relaxed at this solve site (the same rule the writer applied).
    obs::CertifyOptions opts;
    opts.relaxation = obs::context_is_relaxation(bundle.context);
    const obs::Certificate fresh =
        obs::certify(bundle.problem, bundle.solution, opts);
    std::printf("%s: parsed gridsec.audit_bundle v%d (context %s)\n",
                files[0].c_str(), bundle.version, bundle.context.c_str());
    print_certificate(fresh, "recomputed certificate");
    if (fresh.verdict != bundle.certificate.verdict) {
      std::printf(
          "note: stored verdict was '%s' — recomputation disagrees\n",
          std::string(obs::to_string(bundle.certificate.verdict)).c_str());
    }
    if (!fresh.ok()) {
      std::printf("verdict: CERTIFICATE FAILED\n");
      return 1;
    }
    std::printf("verdict: OK\n");
    return 0;
  }

  print_summary(bundle);
  std::printf("\n");
  print_certificate(bundle.certificate, "certificate");
  if (!quiet) {
    print_binding(bundle);
    print_attribution(bundle);
    print_log_tail(bundle, tail);
  }
  return bundle.certificate.ok() ? 0 : 1;
}
