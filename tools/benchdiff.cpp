// gridsec-benchdiff — compare two harness-v2 run reports and gate on
// regressions.
//
//   gridsec-benchdiff [options] BASELINE.json NEW.json
//   gridsec-benchdiff --validate REPORT.json
//
// Options:
//   --metric-threshold=F   relative threshold on per-rep counter deltas
//                          (default 0.10 = +10%)
//   --abs-slack=F          absolute per-rep slack a metric must also exceed
//                          before it gates (default 4; shields near-zero
//                          baselines from noise)
//   --wall-threshold=F     also gate on median wall time regressing more
//                          than F (relative). Off by default: baselines
//                          come from different hardware, so CI gates on
//                          counts, not seconds.
//   --ignore=P1,P2,...     metric-name prefixes to report but never gate
//                          (e.g. util.threadpool. when thread counts vary)
//   --time-suffixes=S1,..  metric-name suffixes carrying wall-clock time;
//                          reported but never gated in either direction,
//                          including disappearance (default: _ns)
//   --quiet                print only regressions and the verdict line
//
// Metrics present only in the candidate report (newly added counters) are
// always informational — only baseline-side disappearance fails coverage.
//
// Exit codes: 0 = clean (self-diff is always clean), 1 = regression,
// 2 = usage or parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gridsec/obs/report.hpp"
#include "gridsec/util/table.hpp"

namespace {

using namespace gridsec;

int usage() {
  std::fprintf(
      stderr,
      "usage: gridsec-benchdiff [--metric-threshold=F] [--abs-slack=F]\n"
      "                         [--wall-threshold=F] [--ignore=P1,P2,...]\n"
      "                         [--time-suffixes=S1,S2,...] [--quiet]\n"
      "                         BASELINE.json NEW.json\n"
      "       gridsec-benchdiff --validate REPORT.json\n");
  return 2;
}

StatusOr<obs::RunReport> load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::not_found("cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return obs::parse_report(buf.str());
}

bool parse_double_flag(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < 0.0) return false;
  *out = v;
  return true;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// True for metrics whose values are byte totals (obs.alloc.bytes,
/// obs.alloc.peak_bytes, and any future *.bytes counter).
bool is_byte_metric(const std::string& quantity) {
  const std::string suffix = "bytes";
  return quantity.size() >= suffix.size() &&
         quantity.compare(quantity.size() - suffix.size(), suffix.size(),
                          suffix) == 0;
}

/// Renders a byte count human-readably: "512 B", "4.0 KiB", "16.2 MiB".
std::string format_bytes(double v) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof buf, "%.0f B", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  }
  return buf;
}

const char* verdict_name(obs::DiffVerdict v) {
  switch (v) {
    case obs::DiffVerdict::kOk: return "ok";
    case obs::DiffVerdict::kRegression: return "REGRESSION";
    case obs::DiffVerdict::kInfo: return "info";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  obs::DiffOptions options;
  bool validate_only = false;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&a](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = value("--metric-threshold=")) {
      if (!parse_double_flag(v, &options.metric_rel_threshold)) return usage();
    } else if (const char* v = value("--abs-slack=")) {
      if (!parse_double_flag(v, &options.metric_abs_slack)) return usage();
    } else if (const char* v = value("--wall-threshold=")) {
      if (!parse_double_flag(v, &options.wall_rel_threshold)) return usage();
    } else if (const char* v = value("--ignore=")) {
      options.ignore_prefixes = split_csv(v);
    } else if (const char* v = value("--time-suffixes=")) {
      options.time_suffixes = split_csv(v);
    } else if (a == "--validate") {
      validate_only = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "gridsec-benchdiff: unknown option '%s'\n",
                   a.c_str());
      return usage();
    } else {
      files.push_back(a);
    }
  }

  if (validate_only) {
    if (files.size() != 1) return usage();
    const auto report = load_report(files[0]);
    if (!report.is_ok()) {
      std::fprintf(stderr, "gridsec-benchdiff: %s: %s\n", files[0].c_str(),
                   report.status().to_string().c_str());
      return 2;
    }
    std::printf(
        "%s: valid %s v%d report — tool=%s git=%s cases=%zu seed=%llu\n",
        files[0].c_str(), obs::kReportSchemaName, report->schema_version,
        report->manifest.tool.c_str(), report->manifest.git_sha.c_str(),
        report->cases.size(),
        static_cast<unsigned long long>(report->manifest.seed));
    return 0;
  }

  if (files.size() != 2) return usage();
  const auto baseline = load_report(files[0]);
  if (!baseline.is_ok()) {
    std::fprintf(stderr, "gridsec-benchdiff: %s: %s\n", files[0].c_str(),
                 baseline.status().to_string().c_str());
    return 2;
  }
  const auto current = load_report(files[1]);
  if (!current.is_ok()) {
    std::fprintf(stderr, "gridsec-benchdiff: %s: %s\n", files[1].c_str(),
                 current.status().to_string().c_str());
    return 2;
  }
  if (baseline->manifest.tool != current->manifest.tool) {
    std::fprintf(stderr,
                 "gridsec-benchdiff: warning: comparing reports from "
                 "different tools ('%s' vs '%s')\n",
                 baseline->manifest.tool.c_str(),
                 current->manifest.tool.c_str());
  }

  const obs::DiffReport diff = obs::diff_reports(*baseline, *current, options);

  Table t({"case", "quantity", "baseline", "new", "change%", "verdict"});
  for (const obs::DiffRow& row : diff.rows) {
    if (quiet && row.verdict != obs::DiffVerdict::kRegression) continue;
    const std::string change =
        row.baseline == 0.0 && row.current != 0.0
            ? "new"
            : format_double(100.0 * row.rel_change, 1);
    std::string verdict = verdict_name(row.verdict);
    if (!row.note.empty()) verdict += " (" + row.note + ")";
    const bool bytes = is_byte_metric(row.quantity);
    t.add_row({row.case_name, row.quantity,
               bytes ? format_bytes(row.baseline)
                     : format_double(row.baseline, 4),
               bytes ? format_bytes(row.current)
                     : format_double(row.current, 4),
               change, verdict});
  }
  t.print(std::cout);
  std::printf(
      "\nbaseline: %s @ %s (%s)\nnew:      %s @ %s (%s)\n",
      baseline->manifest.tool.c_str(), baseline->manifest.git_sha.c_str(),
      baseline->manifest.start_time_utc.c_str(),
      current->manifest.tool.c_str(), current->manifest.git_sha.c_str(),
      current->manifest.start_time_utc.c_str());
  if (diff.clean()) {
    std::printf("verdict: OK — no tracked metric regressed (thresholds: "
                "metric +%.0f%%, abs slack %.1f%s)\n",
                100.0 * options.metric_rel_threshold,
                options.metric_abs_slack,
                options.wall_rel_threshold > 0.0 ? ", wall gated" : "");
    return 0;
  }
  std::printf("verdict: REGRESSION — %d tracked quantit%s regressed\n",
              diff.regressions, diff.regressions == 1 ? "y" : "ies");
  return 1;
}
